package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = seq.Base(rng.Intn(4))
	}
	return s
}

// mutate applies roughly rate substitutions/indels to s.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3: // deletion
		case r < 2*rate/3: // insertion
			out = append(out, b, seq.Base(rng.Intn(4)))
		case r < rate: // substitution
			out = append(out, seq.Base((seq.Code(b)+1+rng.Intn(3))%4))
		default:
			out = append(out, b)
		}
	}
	return out
}

func TestGlobalIdentical(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("ACGTACGTAC")
	r := Global(a, a, sc)
	if r.Score != len(a)*sc.Match {
		t.Errorf("score = %d, want %d", r.Score, len(a)*sc.Match)
	}
	if r.Matches != len(a) || r.Length != len(a) {
		t.Errorf("matches=%d length=%d", r.Matches, r.Length)
	}
	if r.Identity() != 1.0 {
		t.Errorf("identity = %g", r.Identity())
	}
	if r.AStart != 0 || r.BStart != 0 || r.AEnd != len(a) || r.BEnd != len(a) {
		t.Errorf("span = %+v", r)
	}
}

func TestGlobalSingleMismatch(t *testing.T) {
	sc := DefaultScoring()
	r := Global([]byte("ACGTACGT"), []byte("ACGAACGT"), sc)
	want := 7*sc.Match + sc.Mismatch
	if r.Score != want {
		t.Errorf("score = %d, want %d", r.Score, want)
	}
	if r.Matches != 7 || r.Length != 8 {
		t.Errorf("matches=%d length=%d", r.Matches, r.Length)
	}
}

func TestGlobalSingleGap(t *testing.T) {
	sc := DefaultScoring()
	r := Global([]byte("ACGTTACG"), []byte("ACGTACG"), sc)
	want := 7*sc.Match + sc.GapOpen + sc.GapExtend
	if r.Score != want {
		t.Errorf("score = %d, want %d", r.Score, want)
	}
	if r.Length != 8 || r.Matches != 7 {
		t.Errorf("matches=%d length=%d", r.Matches, r.Length)
	}
}

func TestGlobalAffineGapPreferred(t *testing.T) {
	// One gap of length 2 must beat two gaps of length 1 under affine
	// scoring: the optimal alignment of these strings uses a single
	// 2-base gap.
	sc := DefaultScoring()
	r := Global([]byte("AACCGGTT"), []byte("AAGGTT"), sc)
	want := 6*sc.Match + sc.GapOpen + 2*sc.GapExtend
	if r.Score != want {
		t.Errorf("score = %d, want %d", r.Score, want)
	}
}

func TestGlobalEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	r := Global(nil, []byte("ACG"), sc)
	if r.Score != sc.GapOpen+3*sc.GapExtend {
		t.Errorf("score = %d", r.Score)
	}
	r = Global(nil, nil, sc)
	if r.Score != 0 || r.Length != 0 {
		t.Errorf("empty-empty: %+v", r)
	}
}

func TestLocalFindsEmbeddedMatch(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("TTTTTACGTACGTACGTTTTT")
	b := []byte("GGGGGACGTACGTACGTGGGG")
	r := Local(a, b, sc)
	if r.Score != 12*sc.Match {
		t.Errorf("score = %d, want %d", r.Score, 12*sc.Match)
	}
	if string(a[r.AStart:r.AEnd]) != "ACGTACGTACGT" {
		t.Errorf("aligned region %s", a[r.AStart:r.AEnd])
	}
	if r.Identity() != 1.0 {
		t.Errorf("identity = %g", r.Identity())
	}
}

func TestLocalNeverNegative(t *testing.T) {
	sc := DefaultScoring()
	r := Local([]byte("AAAA"), []byte("TTTT"), sc)
	if r.Score < 0 {
		t.Errorf("local score %d < 0", r.Score)
	}
}

func TestOverlapSuffixPrefix(t *testing.T) {
	sc := DefaultScoring()
	// a's suffix of 12 equals b's prefix of 12.
	a := []byte("TTTTTTTTACGTACGTACGA")
	b := []byte("ACGTACGTACGACCCCCCCC")
	r := Overlap(a, b, sc)
	if r.Score != 12*sc.Match {
		t.Errorf("score = %d, want %d", r.Score, 12*sc.Match)
	}
	if r.AStart != 8 || r.AEnd != 20 || r.BStart != 0 || r.BEnd != 12 {
		t.Errorf("span = %+v", r)
	}
	if r.OverlapLen() != 12 {
		t.Errorf("OverlapLen = %d", r.OverlapLen())
	}
}

func TestOverlapContainment(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("TTTTACGTACGTACGATTTT")
	b := []byte("ACGTACGTACGA")
	r := Overlap(a, b, sc)
	if r.Score != 12*sc.Match {
		t.Errorf("score = %d, want %d", r.Score, 12*sc.Match)
	}
	if r.BStart != 0 || r.BEnd != 12 {
		t.Errorf("containment span = %+v", r)
	}
}

func TestOverlapMaskedBasesNeverMatch(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("NNNNNNNNNNNN")
	r := Overlap(a, a, sc)
	if r.Matches != 0 {
		t.Errorf("masked bases matched: %+v", r)
	}
}

func TestAnchoredOverlapExactCase(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(3))
	genome := randDNA(rng, 300)
	a := genome[:200]
	b := genome[120:]
	// Anchor: a[120:140] == b[0:20].
	r, ok := AnchoredOverlap(a, b, 120, 0, 20, DefaultBand, sc)
	if !ok {
		t.Fatal("anchored overlap failed")
	}
	if r.AStart != 120 || r.AEnd != 200 || r.BStart != 0 || r.BEnd != 80 {
		t.Errorf("span = %+v", r)
	}
	if r.Identity() != 1.0 || r.Matches != 80 {
		t.Errorf("identity=%g matches=%d", r.Identity(), r.Matches)
	}
	if r.Score != 80*sc.Match {
		t.Errorf("score = %d", r.Score)
	}
}

func TestAnchoredOverlapWithErrors(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		genome := randDNA(rng, 400)
		aClean := genome[:260]
		bClean := genome[140:]
		a := mutate(rng, aClean, 0.02)
		b := mutate(rng, bClean, 0.02)
		// Find a shared exact 16-mer as anchor inside the true overlap.
		apos, bpos, mlen := findAnchor(a, b, 16)
		if mlen == 0 {
			continue // no anchor survived mutation; skip trial
		}
		r, ok := AnchoredOverlap(a, b, apos, bpos, mlen, DefaultBand, sc)
		if !ok {
			t.Fatalf("trial %d: extension failed", trial)
		}
		if r.Identity() < 0.90 {
			t.Errorf("trial %d: identity %.3f too low", trial, r.Identity())
		}
		if r.OverlapLen() < 80 {
			t.Errorf("trial %d: overlap %d too short", trial, r.OverlapLen())
		}
	}
}

// findAnchor locates a shared k-mer between a and b and extends it to a
// maximal match, returning its coordinates.
func findAnchor(a, b []byte, k int) (apos, bpos, mlen int) {
	idx := make(map[string]int)
	for i := 0; i+k <= len(a); i++ {
		idx[string(a[i:i+k])] = i
	}
	for j := 0; j+k <= len(b); j++ {
		if i, ok := idx[string(b[j:j+k])]; ok {
			// Extend to a maximal match.
			s, t := i, j
			for s > 0 && t > 0 && a[s-1] == b[t-1] {
				s--
				t--
			}
			e, f := i+k, j+k
			for e < len(a) && f < len(b) && a[e] == b[f] {
				e++
				f++
			}
			return s, t, e - s
		}
	}
	return 0, 0, 0
}

func TestAnchoredOverlapAgreesWithFullOverlap(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(21))
	agree := 0
	trials := 0
	for trial := 0; trial < 30; trial++ {
		genome := randDNA(rng, 300)
		a := mutate(rng, genome[:200], 0.01)
		b := mutate(rng, genome[100:], 0.01)
		apos, bpos, mlen := findAnchor(a, b, 16)
		if mlen == 0 {
			continue
		}
		trials++
		banded, ok := AnchoredOverlap(a, b, apos, bpos, mlen, DefaultBand, sc)
		if !ok {
			continue
		}
		full := Overlap(a, b, sc)
		// The banded anchored score can only be ≤ the unbanded optimum.
		if banded.Score > full.Score {
			t.Fatalf("trial %d: banded %d > full %d", trial, banded.Score, full.Score)
		}
		if float64(banded.Score) >= 0.95*float64(full.Score) {
			agree++
		}
	}
	if trials > 0 && agree < trials*8/10 {
		t.Errorf("banded agreed with full on only %d/%d trials", agree, trials)
	}
}

func TestAnchoredOverlapBandTooNarrow(t *testing.T) {
	sc := DefaultScoring()
	// The sequences diverge by a 10-base insertion right after the
	// anchor; a band of 2 cannot absorb it but the extension can still
	// reach a boundary (at poor score); identity should collapse.
	a := []byte("ACGTACGTACGTAAAAAAAAAACCCCCCCCGGGG")
	b := []byte("ACGTACGTACGTCCCCCCCCGGGG")
	r, ok := AnchoredOverlap(a, b, 0, 0, 12, 2, sc)
	if ok && r.Identity() > 0.9 {
		t.Errorf("narrow band should not find a high-identity overlap: %+v", r)
	}
}

func TestCriteriaAccept(t *testing.T) {
	c := Criteria{MinOverlap: 40, MinIdentity: 0.9}
	good := Result{AStart: 0, AEnd: 50, BStart: 0, BEnd: 50, Matches: 48, Length: 50}
	if !c.Accept(good) {
		t.Error("good overlap rejected")
	}
	short := Result{AStart: 0, AEnd: 30, BStart: 0, BEnd: 30, Matches: 30, Length: 30}
	if c.Accept(short) {
		t.Error("short overlap accepted")
	}
	noisy := Result{AStart: 0, AEnd: 50, BStart: 0, BEnd: 50, Matches: 40, Length: 50}
	if c.Accept(noisy) {
		t.Error("low-identity overlap accepted")
	}
}

func TestClusterLooserThanAssembly(t *testing.T) {
	cc, ac := ClusterCriteria(), AssemblyCriteria()
	if cc.MinIdentity >= ac.MinIdentity {
		t.Error("clustering must be less stringent than assembly (paper §3)")
	}
}

// Property: global alignment score is symmetric.
func TestGlobalSymmetry(t *testing.T) {
	sc := DefaultScoring()
	f := func(ra, rb []byte) bool {
		a, b := seq.Clean(truncate(ra, 40)), seq.Clean(truncate(rb, 40))
		return Global(a, b, sc).Score == Global(b, a, sc).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: overlap alignment is reverse-complement invariant:
// overlapping a suffix of a with a prefix of b is the same problem as
// overlapping a suffix of RC(b) with a prefix of RC(a).
func TestOverlapRCInvariance(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randDNA(rng, 30+rng.Intn(40))
		b := randDNA(rng, 30+rng.Intn(40))
		r1 := Overlap(a, b, sc)
		r2 := Overlap(seq.ReverseComplement(b), seq.ReverseComplement(a), sc)
		if r1.Score != r2.Score {
			t.Fatalf("trial %d: %d != %d", trial, r1.Score, r2.Score)
		}
	}
}

// Property: identity is in [0,1] and Matches ≤ Length for all modes.
func TestResultInvariants(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		a := randDNA(rng, rng.Intn(60))
		b := randDNA(rng, rng.Intn(60))
		for _, r := range []Result{Global(a, b, sc), Local(a, b, sc), Overlap(a, b, sc)} {
			if r.Matches > r.Length {
				t.Fatalf("matches %d > length %d", r.Matches, r.Length)
			}
			if id := r.Identity(); id < 0 || id > 1 {
				t.Fatalf("identity %g out of range", id)
			}
			if r.AStart > r.AEnd || r.BStart > r.BEnd {
				t.Fatalf("inverted span %+v", r)
			}
			if r.AEnd > len(a) || r.BEnd > len(b) {
				t.Fatalf("span out of bounds %+v", r)
			}
		}
	}
}

// Property: local score ≥ 0 and ≥ any global score.
func TestLocalDominatesGlobal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		a := randDNA(rng, 10+rng.Intn(50))
		b := randDNA(rng, 10+rng.Intn(50))
		l, g := Local(a, b, sc), Global(a, b, sc)
		if l.Score < 0 {
			t.Fatalf("local score %d < 0", l.Score)
		}
		if l.Score < g.Score {
			t.Fatalf("local %d < global %d", l.Score, g.Score)
		}
	}
}

// Property: overlap score ≥ global score (free end gaps can only help).
func TestOverlapDominatesGlobal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := randDNA(rng, 10+rng.Intn(50))
		b := randDNA(rng, 10+rng.Intn(50))
		o, g := Overlap(a, b, sc), Global(a, b, sc)
		if o.Score < g.Score {
			t.Fatalf("overlap %d < global %d", o.Score, g.Score)
		}
	}
}

func truncate(s []byte, n int) []byte {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func TestAnchoredOverlapFullLengthAnchor(t *testing.T) {
	sc := DefaultScoring()
	a := []byte("ACGTACGTACGTACGTACGT")
	b := append([]byte(nil), a...)
	r, ok := AnchoredOverlap(a, b, 0, 0, len(a), DefaultBand, sc)
	if !ok {
		t.Fatal("identical sequences must overlap")
	}
	if r.Matches != len(a) || r.Identity() != 1.0 {
		t.Errorf("full anchor: %+v", r)
	}
	if r.AStart != 0 || r.AEnd != len(a) || r.BStart != 0 || r.BEnd != len(b) {
		t.Errorf("span: %+v", r)
	}
}

func TestAnchoredOverlapAnchorAtEdges(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(77))
	g := randDNA(rng, 120)
	a, b := g[:80], g[40:]
	// Anchor at the very start of the shared region on b, end of a.
	r, ok := AnchoredOverlap(a, b, 40, 0, 40, DefaultBand, sc)
	if !ok || r.Matches != 40 {
		t.Fatalf("edge anchor failed: %+v ok=%v", r, ok)
	}
	// Anchor covering only the tail end.
	r2, ok2 := AnchoredOverlap(a, b, 70, 30, 10, DefaultBand, sc)
	if !ok2 || r2.Matches != 40 {
		t.Fatalf("tail anchor failed: %+v ok=%v", r2, ok2)
	}
}
