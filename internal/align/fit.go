package align

import "repro/internal/seq"

// Fit computes a banded fitting alignment: the whole of query is
// aligned inside reference, with free leading and trailing gaps in the
// reference only, restricted to a band of half-width band around the
// diagonal diag0 (query position i is expected near reference position
// i+diag0). Gap costs are linear (GapOpen+GapExtend per base), which
// suffices for consensus voting and validation against near-colinear
// truth. Memory is O(len(query)·band) — safe for contig-scale inputs
// where the full matrix would be gigabytes.
//
// In the Result, A is the reference and B the query. ok is false when
// no in-band path consumes the whole query.
func Fit(reference, query []byte, diag0, band int, sc Scoring) (Result, bool) {
	lu, lv := len(reference), len(query)
	if lv == 0 {
		return Result{}, false
	}
	if band < 1 {
		band = 1
	}
	width := 2*band + 1
	const neg = -1 << 28
	gap := sc.GapOpen + sc.GapExtend

	score := make([]int32, (lv+1)*width)
	from := make([]uint8, (lv+1)*width)
	const (
		fDiag = 0
		fUp   = 1
		fLeft = 2
		fNone = 3
	)
	idx := func(i, o int) int { return i*width + o }
	jOf := func(i, o int) int { return i + diag0 + o - band }

	for o := 0; o < width; o++ {
		from[idx(0, o)] = fNone
		if j := jOf(0, o); j < 0 || j > lu {
			score[idx(0, o)] = neg
		}
	}
	for i := 1; i <= lv; i++ {
		for o := 0; o < width; o++ {
			j := jOf(i, o)
			score[idx(i, o)] = neg
			from[idx(i, o)] = fNone
			if j < 0 || j > lu {
				continue
			}
			if j >= 1 && score[idx(i-1, o)] > neg {
				s := int32(sc.Mismatch)
				if reference[j-1] == query[i-1] && seq.IsBase(reference[j-1]) {
					s = int32(sc.Match)
				}
				if cand := score[idx(i-1, o)] + s; cand > score[idx(i, o)] {
					score[idx(i, o)], from[idx(i, o)] = cand, fDiag
				}
			}
			if o+1 < width && score[idx(i-1, o+1)] > neg {
				if cand := score[idx(i-1, o+1)] + int32(gap); cand > score[idx(i, o)] {
					score[idx(i, o)], from[idx(i, o)] = cand, fUp
				}
			}
			if o-1 >= 0 && j >= 1 && score[idx(i, o-1)] > neg {
				if cand := score[idx(i, o-1)] + int32(gap); cand > score[idx(i, o)] {
					score[idx(i, o)], from[idx(i, o)] = cand, fLeft
				}
			}
		}
	}

	bestO, bestS := -1, int32(neg)
	for o := 0; o < width; o++ {
		if j := jOf(lv, o); j < 0 || j > lu {
			continue
		}
		if score[idx(lv, o)] > bestS {
			bestS, bestO = score[idx(lv, o)], o
		}
	}
	if bestO < 0 {
		return Result{}, false
	}

	res := Result{Score: int(bestS), BEnd: lv, AEnd: jOf(lv, bestO)}
	// Traceback, collected back to front.
	var rev []uint8
	i, o := lv, bestO
	for i > 0 {
		f := from[idx(i, o)]
		if f == fNone {
			break
		}
		rev = append(rev, f)
		switch f {
		case fDiag:
			i--
		case fUp:
			i--
			o++
		case fLeft:
			o--
		}
	}
	res.BStart = i
	res.AStart = jOf(i, o)
	if res.AStart < 0 {
		res.AStart = 0
	}
	// Emit ops front to back in the package convention: A is the
	// reference, B the query; OpX consumes a reference base, OpY a
	// query base.
	ai, bi := res.AStart, res.BStart
	res.Ops = make([]byte, 0, len(rev))
	for k := len(rev) - 1; k >= 0; k-- {
		res.Length++
		switch rev[k] {
		case fDiag:
			res.Ops = append(res.Ops, OpM)
			if reference[ai] == query[bi] && seq.IsBase(reference[ai]) {
				res.Matches++
			}
			ai++
			bi++
		case fUp: // query base against a gap in the reference
			res.Ops = append(res.Ops, OpY)
			bi++
		case fLeft: // reference base against a gap in the query
			res.Ops = append(res.Ops, OpX)
			ai++
		}
	}
	return res, true
}
