package jobs

import (
	"os"
	"path/filepath"
	"time"
)

// gcLoop periodically sweeps terminal jobs past their retention
// window: intermediate artifacts (pipeline workdir, input, progress
// and collector markers) are removed and the reclaim is journaled;
// cached results (contigs + report + runner log) survive so repeat
// submissions stay instant.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.GCInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.draining:
			return
		case <-tick.C:
			s.sweep()
		}
	}
}

func (s *Server) sweep() {
	cutoff := s.now().Add(-s.cfg.Retain).UnixNano()
	s.mu.Lock()
	var due []*Job
	for _, job := range s.jobs {
		if job.State.Terminal() && !job.GCed && job.FinishedAt > 0 && job.FinishedAt < cutoff {
			due = append(due, job)
		}
	}
	s.mu.Unlock()

	for _, job := range due {
		dir := s.jobDir(job.ID)
		failed := false
		for _, name := range []string{workDir, inputFile, progressFile, collectorFile} {
			if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
				s.logf("gc: job %s: %v", job.ID, err)
				failed = true
			}
		}
		if failed {
			continue // retry next sweep; journal only completed reclaims
		}
		s.mu.Lock()
		if !job.GCed { // re-check under lock; sweep may race a restart
			s.applyLocked(Record{Op: OpGC, Job: job.ID})
		}
		s.mu.Unlock()
		s.logf("gc: job %s intermediates reclaimed", job.ID)
	}
}
