package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Op is one journaled job-state transition.
type Op string

const (
	// OpSubmit creates a job (acknowledged to the client only after
	// the record is durably appended).
	OpSubmit Op = "submit"
	// OpStart marks an attempt's runner process spawned.
	OpStart Op = "start"
	// OpDone marks the job complete with its artifacts on disk.
	OpDone Op = "done"
	// OpFail charges a failed attempt (the job returns to the queue
	// until its retry budget is exhausted).
	OpFail Op = "fail"
	// OpRequeue returns a running job to the queue without charging
	// an attempt: graceful drain, a busy workdir, or restart adoption.
	OpRequeue Op = "requeue"
	// OpQuarantine parks a poison job that exhausted its budget.
	OpQuarantine Op = "quarantine"
	// OpGC records that a job's intermediate artifacts were swept.
	OpGC Op = "gc"
)

// Record is one journal entry. Seq is assigned by Append and must
// increase by exactly 1 per record — replay treats any gap as
// corruption rather than silently skipping acknowledged work.
type Record struct {
	Seq     uint64 `json:"seq"`
	Op      Op     `json:"op"`
	Job     string `json:"job"`
	T       int64  `json:"t,omitempty"` // unix nanos, informational
	Key     string `json:"key,omitempty"`
	Spec    *Spec  `json:"spec,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	PID     int    `json:"pid,omitempty"`
	Err     string `json:"err,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// Journal is the append-only job log. Every record is one line:
// an 8-hex-digit CRC32 of the JSON payload, a space, the payload.
// Appends are fsynced before they return, so an acknowledged
// submission survives SIGKILL; a torn final line (crash mid-append)
// is detected by its checksum and truncated on the next open.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
	now  func() int64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func encodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseLine decodes one newline-stripped journal line, returning
// ok=false for a line whose checksum or framing fails.
func parseLine(line []byte) (Record, bool) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// OpenJournal opens (creating if absent) the journal at path, returns
// the replayable records, and leaves the file positioned for appends.
// A torn tail — the final record half-written by a crash — is
// truncated away; a bad record followed by valid ones means the log
// was corrupted mid-file and is an error, never a silent skip.
func OpenJournal(path string) (*Journal, []Record, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	var recs []Record
	valid := 0 // byte length of the valid prefix
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // no newline: torn tail
		}
		rec, ok := parseLine(b[off : off+nl])
		if !ok || rec.Seq != uint64(len(recs))+1 {
			// Bad record. If anything after it parses, the log is
			// corrupted mid-file; otherwise it is just the torn tail.
			if rest := b[off+nl+1:]; hasValidRecord(rest) {
				return nil, nil, fmt.Errorf("jobs: journal %s corrupted at byte %d (record %d)", path, off, len(recs)+1)
			}
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		valid = off
	}
	if valid < len(b) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	j := &Journal{f: f, path: path, now: func() int64 { return time.Now().UnixNano() }}
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
	}
	return j, recs, nil
}

// hasValidRecord reports whether any newline-terminated line in b
// parses as a journal record.
func hasValidRecord(b []byte) bool {
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			return false
		}
		if _, ok := parseLine(b[off : off+nl]); ok {
			return true
		}
		off += nl + 1
	}
	return false
}

// Append durably writes one record (assigning its sequence number and
// timestamp) and returns the record as written, only after fsync — the
// caller may then apply it in memory and acknowledge the transition.
func (j *Journal) Append(r Record) (Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return r, fmt.Errorf("jobs: journal closed")
	}
	j.seq++
	r.Seq = j.seq
	if r.T == 0 {
		r.T = j.now()
	}
	line, err := encodeRecord(r)
	if err != nil {
		j.seq--
		return r, fmt.Errorf("jobs: encode journal record: %w", err)
	}
	if _, err := j.f.Write(line); err != nil {
		return r, fmt.Errorf("jobs: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return r, fmt.Errorf("jobs: sync journal: %w", err)
	}
	return r, nil
}

// Close releases the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
