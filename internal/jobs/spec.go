// Package jobs is the assembly-as-a-service layer: a crash-safe job
// queue in front of the checkpointed pipeline. Submissions are
// journaled to an append-only, checksummed log before they are
// acknowledged; a restarted server replays the journal, re-adopts jobs
// that were running (their workdirs resume via the pipeline manifest,
// byte-identically) and never loses or duplicates a submission. A
// supervised worker pool drains the queue by spawning one runner
// process per attempt — bounded retries with capped jittered backoff,
// per-attempt deadlines, per-job workdir quotas, quarantine for jobs
// that exhaust their budget, and graceful drain (running jobs
// checkpoint at the next phase boundary and requeue).
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Spec is the per-job assembly configuration a client submits
// alongside its reads. The zero value means "defaults"; withDefaults
// canonicalizes before fingerprinting so equivalent submissions
// dedupe to the same job.
type Spec struct {
	// Psi is the minimum maximal-match length ψ (default 20).
	Psi int `json:"psi,omitempty"`
	// W is the GST bucket prefix length (default 10, ≤ ψ).
	W int `json:"w,omitempty"`
	// Ranks sizes the in-process master–worker machine (default 1 =
	// serial clustering).
	Ranks int `json:"ranks,omitempty"`
	// Mask enables statistical repeat detection + masking.
	Mask bool `json:"mask,omitempty"`
	// Seed drives repeat-detection sampling (default 1).
	Seed int64 `json:"seed,omitempty"`
	// AssemblyRetries is the per-cluster guard budget (default 1).
	AssemblyRetries int `json:"assembly_retries,omitempty"`
	// Store selects the sequence-store backend: "" or "mem" (default,
	// all-RAM) or "disk" (out-of-core: 2-bit packed bases on disk
	// under the job workdir behind a bounded cache).
	Store string `json:"store,omitempty"`
	// MemBudget, when positive, bounds GST construction memory via the
	// spilling build (bytes). Usually paired with Store "disk".
	MemBudget int64 `json:"mem_budget,omitempty"`
	// FailInject is the fault-injection hook for supervision tests:
	// "crash" makes the runner exit non-zero immediately (a poison
	// job), "hang" makes it block forever (exercises the deadline).
	// Production submissions leave it empty.
	FailInject string `json:"fail_inject,omitempty"`
	// Profile runs the attempt under a profiling session: phase/rank-
	// labeled CPU + heap/alloc artifacts land in the job's prof/
	// directory, and the completing attempt archives the cross-rank
	// merged CPU profile served at /jobs/{id}/profile.
	Profile bool `json:"profile,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Psi <= 0 {
		s.Psi = 20
	}
	if s.W <= 0 {
		s.W = 10
	}
	if s.Ranks <= 0 {
		s.Ranks = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.AssemblyRetries <= 0 {
		s.AssemblyRetries = 1
	}
	return s
}

func (s Spec) validate() error {
	s = s.withDefaults()
	if s.W > s.Psi {
		return fmt.Errorf("jobs: w=%d exceeds psi=%d", s.W, s.Psi)
	}
	if s.Ranks > 64 {
		return fmt.Errorf("jobs: ranks=%d exceeds the per-job cap of 64", s.Ranks)
	}
	switch s.FailInject {
	case "", "crash", "hang":
	default:
		return fmt.Errorf("jobs: unknown fail_inject %q (crash, hang)", s.FailInject)
	}
	switch s.Store {
	case "", "mem", "disk":
	default:
		return fmt.Errorf("jobs: unknown store backend %q (mem, disk)", s.Store)
	}
	if s.MemBudget < 0 {
		return fmt.Errorf("jobs: mem_budget=%d is negative", s.MemBudget)
	}
	return nil
}

// Flags is the canonical configuration fingerprint. It doubles as the
// pipeline manifest's Flags string, so a resumed attempt refuses a
// workdir written under a different configuration.
func (s Spec) Flags() string {
	s = s.withDefaults()
	f := fmt.Sprintf("psi=%d w=%d ranks=%d mask=%v seed=%d aretries=%d",
		s.Psi, s.W, s.Ranks, s.Mask, s.Seed, s.AssemblyRetries)
	// Out-of-core fields append only when set, so fingerprints (and
	// therefore idempotency keys and resumable workdirs) of existing
	// in-memory jobs are unchanged.
	if s.Store == "disk" {
		f += " store=disk"
	}
	if s.MemBudget > 0 {
		f += fmt.Sprintf(" membudget=%d", s.MemBudget)
	}
	if s.FailInject != "" {
		f += " fail=" + s.FailInject
	}
	if s.Profile {
		f += " profile"
	}
	return f
}

// IdempotencyKey fingerprints (input bytes, configuration). Two
// submissions with the same key are the same job: the second returns
// the first's ID (and, when done, its cached result) instead of
// re-running.
func IdempotencyKey(input []byte, s Spec) string {
	h := sha256.New()
	h.Write([]byte(s.Flags()))
	h.Write([]byte{'\n'})
	h.Write(input)
	return hex.EncodeToString(h.Sum(nil))
}

// jobID derives the external job ID from the idempotency key. Keying
// the ID (and the job directory) on the fingerprint is what makes
// resubmission hit the same workdir and return the cached result.
func jobID(key string) string { return "j" + key[:16] }
