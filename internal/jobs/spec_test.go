package jobs

import (
	"strings"
	"testing"
)

// TestFlagsFingerprintStability: the out-of-core fields must append to
// the fingerprint only when set — existing in-memory jobs keep their
// idempotency keys and resumable workdirs across this change.
func TestFlagsFingerprintStability(t *testing.T) {
	base := Spec{}.Flags()
	if strings.Contains(base, "store=") || strings.Contains(base, "membudget=") {
		t.Fatalf("default fingerprint mentions out-of-core fields: %q", base)
	}
	if got := (Spec{Store: "mem"}).Flags(); got != base {
		t.Fatalf("explicit mem backend changed the fingerprint: %q vs %q", got, base)
	}
	disk := Spec{Store: "disk", MemBudget: 1 << 20}.Flags()
	if !strings.Contains(disk, "store=disk") || !strings.Contains(disk, "membudget=1048576") {
		t.Fatalf("disk fingerprint missing out-of-core fields: %q", disk)
	}
	if IdempotencyKey([]byte("x"), Spec{}) == IdempotencyKey([]byte("x"), Spec{Store: "disk"}) {
		t.Fatal("disk and mem submissions dedupe to the same job")
	}
}

// TestSpecValidatesStore: unknown backends and negative budgets are
// rejected at submission time.
func TestSpecValidatesStore(t *testing.T) {
	if err := (Spec{Store: "tape"}).validate(); err == nil {
		t.Fatal("store=tape accepted")
	}
	if err := (Spec{MemBudget: -1}).validate(); err == nil {
		t.Fatal("negative mem_budget accepted")
	}
	if err := (Spec{Store: "disk", MemBudget: 1 << 20}).validate(); err != nil {
		t.Fatalf("valid disk spec rejected: %v", err)
	}
}
