package jobs

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/launch"
)

// supervise is one worker's loop: pick the oldest eligible queued job,
// run an attempt, classify the outcome, repeat. Workers exit when the
// server starts draining.
func (s *Server) supervise(w int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.draining:
			return
		default:
		}
		job := s.claim()
		if job == nil {
			select {
			case <-s.draining:
				return
			case <-time.After(pollInterval):
			}
			continue
		}
		s.runAttempt(w, job)
	}
}

const pollInterval = 50 * time.Millisecond

// claim picks the oldest eligible queued job, journals either its
// start or its quarantine, and returns it in Running state (nil when
// nothing is runnable). The journal write happens under the server
// lock BEFORE the subprocess exists, so a crash between the two at
// worst re-adopts a Running job with no process — which restart
// requeues — never runs a job twice concurrently.
func (s *Server) claim() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var pick *Job
	for _, job := range s.jobs {
		if !job.Eligible(now) {
			continue
		}
		if pick == nil || job.SubmittedAt < pick.SubmittedAt ||
			(job.SubmittedAt == pick.SubmittedAt && job.ID < pick.ID) {
			pick = job
		}
	}
	if pick == nil {
		return nil
	}
	if pick.Attempts >= s.cfg.MaxAttempts {
		s.applyLocked(Record{
			Op: OpQuarantine, Job: pick.ID,
			Err: fmt.Sprintf("retry budget exhausted after %d attempts: %s", pick.Attempts, pick.Err),
		})
		s.logf("job %s quarantined after %d attempts", pick.ID, pick.Attempts)
		return nil
	}
	s.applyLocked(Record{Op: OpStart, Job: pick.ID, Attempt: pick.Attempts + 1})
	return pick
}

// runAttempt spawns the runner subprocess for one attempt and journals
// the outcome. Deadline overruns and quota breaches SIGKILL the child
// and charge the attempt; drain SIGTERMs it and requeues uncharged.
func (s *Server) runAttempt(w int, job *Job) {
	dir := s.jobDir(job.ID)
	cmd, err := launch.SelfExec([]string{runnerDirEnv + "=" + dir})
	if err != nil {
		s.finish(job, Record{Op: OpFail, Job: job.ID, Err: "spawn: " + err.Error()})
		return
	}
	logf, err := os.OpenFile(filepath.Join(dir, runnerLogFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		fmt.Fprintf(logf, "--- attempt %d ---\n", job.Attempts+1)
		cmd.Stdout = logf
		cmd.Stderr = logf
		defer logf.Close()
	}
	if err := cmd.Start(); err != nil {
		s.finish(job, Record{Op: OpFail, Job: job.ID, Err: "spawn: " + err.Error()})
		return
	}
	s.setPID(job, cmd.Process.Pid)
	s.logf("worker %d: job %s attempt %d started (pid %d)", w, job.ID, job.Attempts+1, cmd.Process.Pid)

	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()

	deadline := time.NewTimer(s.cfg.AttemptDeadline)
	defer deadline.Stop()
	quota := time.NewTicker(quotaInterval)
	defer quota.Stop()

	var waitErr error
	var killed string // non-empty when the supervisor killed the child
	var drained bool
wait:
	for {
		select {
		case waitErr = <-waitc:
			break wait
		case <-deadline.C:
			killed = fmt.Sprintf("attempt deadline %s exceeded", s.cfg.AttemptDeadline)
			_ = cmd.Process.Signal(syscall.SIGKILL)
			waitErr = <-waitc
			break wait
		case <-quota.C:
			if s.cfg.QuotaBytes > 0 {
				if sz := dirSize(dir); sz > s.cfg.QuotaBytes {
					killed = fmt.Sprintf("workdir quota exceeded (%d > %d bytes)", sz, s.cfg.QuotaBytes)
					_ = cmd.Process.Signal(syscall.SIGKILL)
					waitErr = <-waitc
					break wait
				}
			}
		case <-s.draining:
			// Graceful drain: ask for a phase-boundary checkpoint, then
			// escalate to SIGKILL if the child overstays.
			drained = true
			_ = cmd.Process.Signal(syscall.SIGTERM)
			select {
			case waitErr = <-waitc:
			case <-time.After(s.cfg.DrainTimeout):
				killed = "drain timeout"
				_ = cmd.Process.Signal(syscall.SIGKILL)
				waitErr = <-waitc
			}
			break wait
		}
	}

	switch {
	case killed != "" && drained:
		// Couldn't checkpoint in time, but drain kills are not the
		// job's fault: the manifest still resumes from the last phase.
		s.finish(job, Record{Op: OpRequeue, Job: job.ID, Reason: "drain (killed: " + killed + ")"})
	case killed != "":
		s.finish(job, Record{Op: OpFail, Job: job.ID, Err: killed})
		s.backoffJob(job)
	case waitErr == nil:
		s.finish(job, Record{Op: OpDone, Job: job.ID})
		s.logf("worker %d: job %s done", w, job.ID)
	default:
		switch exitCode(waitErr) {
		case ExitInterrupted:
			s.finish(job, Record{Op: OpRequeue, Job: job.ID, Reason: "interrupted: checkpointed"})
		case ExitBusy:
			s.finish(job, Record{Op: OpRequeue, Job: job.ID, Reason: "workdir busy"})
			s.backoffJob(job)
		default:
			s.finish(job, Record{Op: OpFail, Job: job.ID, Err: waitErr.Error()})
			s.backoffJob(job)
			s.logf("worker %d: job %s attempt failed: %v", w, job.ID, waitErr)
		}
	}
}

// finish journals an attempt outcome and clears the PID. Journal
// append failures here are fatal for the server's guarantees, so they
// panic the worker rather than silently diverge memory from disk.
func (s *Server) finish(job *Job, r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.PID = 0
	s.applyLocked(r)
}

// backoffJob sets the in-memory retry gate from the shared policy.
func (s *Server) backoffJob(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.cfg.Backoff.Delay(job.Attempts+job.Requeues, s.rng)
	job.notBefore = s.now().Add(d)
}

func (s *Server) setPID(job *Job, pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.PID = pid
}

// exitCode extracts the process exit status (-1 when unknown/signal).
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

const quotaInterval = 250 * time.Millisecond

// dirSize walks dir summing regular-file sizes (best effort).
func dirSize(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total
}
