package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/seq"
	"repro/internal/simulate"
)

const serveConfEnv = "ASM_TEST_SERVE_CONF"

// TestMain routes re-executed copies of the test binary: a runner
// child (spawned by the supervisor via SelfExec) enters RunJob; a
// server helper (spawned by the kill/restart test so it can be
// SIGKILLed without taking the test down) serves until killed.
func TestMain(m *testing.M) {
	MaybeRunJob()
	if conf := os.Getenv(serveConfEnv); conf != "" {
		serveHelperMain(conf)
		return
	}
	os.Exit(m.Run())
}

// serveConf is the JSON-safe subset of Config shipped to the helper
// process (Config itself has func fields).
type serveConf struct {
	Dir             string
	Workers         int
	MaxAttempts     int
	AttemptDeadline time.Duration
	DrainTimeout    time.Duration
	GCInterval      time.Duration
	Retain          time.Duration
}

func serveHelperMain(conf string) {
	var sc serveConf
	if err := json.Unmarshal([]byte(conf), &sc); err != nil {
		fmt.Fprintln(os.Stderr, "serve helper:", err)
		os.Exit(1)
	}
	cfg := Config{
		Dir: sc.Dir, Workers: sc.Workers, MaxAttempts: sc.MaxAttempts,
		AttemptDeadline: sc.AttemptDeadline, DrainTimeout: sc.DrainTimeout,
		GCInterval: sc.GCInterval, Retain: sc.Retain,
		Backoff: testBackoff(),
	}
	cfg.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	srv, err := Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve helper:", err)
		os.Exit(1)
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "serve helper:", err)
		os.Exit(1)
	}
	select {} // run until killed
}

func testBackoff() backoff.Policy {
	return backoff.Policy{Base: 50 * time.Millisecond, Cap: 300 * time.Millisecond, Jitter: 0.2}
}

// startServerProc launches a SIGKILL-able server subprocess over dir
// and returns its base URL and the process handle.
func startServerProc(t *testing.T, dir string, cfg serveConf) (*exec.Cmd, string) {
	t.Helper()
	cfg.Dir = dir
	confJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrPath := filepath.Join(dir, "addr")
	os.Remove(addrPath)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), serveConfEnv+"="+string(confJSON))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrPath); err == nil && len(b) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("server subprocess never published its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// makeFASTA synthesizes a deterministic read set big enough that a
// full pipeline run takes a couple of seconds — room to kill the
// server mid-job.
func makeFASTA(t *testing.T, seed int64, islands, islandLen, reads int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	genomes := make([]*simulate.Genome, islands)
	for i := range genomes {
		genomes[i] = simulate.NewGenome(rng, fmt.Sprintf("isl%d", i),
			simulate.GenomeConfig{Length: islandLen})
	}
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 300
	rc.LenSD = 30
	rc.VectorProb = 0
	var recs []seq.Record
	for i := 0; i < reads; i++ {
		g := genomes[i%islands]
		start := (i / islands * 137) % (islandLen - rc.MeanLen)
		f := simulate.SampleAt(rng, g, rc, start, fmt.Sprintf("r%04d", i))
		recs = append(recs, seq.Record{Name: f.Name, Bases: f.Bases})
	}
	var buf bytes.Buffer
	if err := seq.WriteFASTA(&buf, recs, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// httpJob is the decoded wire form of a job status.
type httpJob struct {
	ID           string `json:"id"`
	State        State  `json:"state"`
	Attempts     int    `json:"attempts"`
	Requeues     int    `json:"requeues"`
	Err          string `json:"error"`
	Phase        string `json:"phase"`
	CollectorURL string `json:"collector_url"`
	Cached       bool   `json:"cached"`
}

func submit(t *testing.T, base, params string, body []byte) (httpJob, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs?"+params, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return httpJob{Err: string(b)}, resp.StatusCode
	}
	var job httpJob
	if err := json.Unmarshal(b, &job); err != nil {
		t.Fatalf("submit response %q: %v", b, err)
	}
	return job, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) (httpJob, error) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return httpJob{}, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		return httpJob{}, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var job httpJob
	if err := json.Unmarshal(b, &job); err != nil {
		return httpJob{}, err
	}
	return job, nil
}

func waitState(t *testing.T, base, id string, want State, timeout time.Duration) httpJob {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last httpJob
	for time.Now().Before(deadline) {
		job, err := getStatus(t, base, id)
		if err == nil {
			last = job
			if job.State == want {
				return job
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, last)
	return httpJob{}
}

func fetchArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("fetch %s: status %d: %s", name, resp.StatusCode, b)
	}
	return b
}

// TestServiceSmoke is the acceptance scenario: submit a job, SIGKILL
// the server mid-run, restart it on the same directory, and require
// (a) the job completes with contigs byte-identical to an
// uninterrupted run and (b) resubmitting the same input returns the
// cached result instantly.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	input := makeFASTA(t, 21, 3, 6000, 700)
	cfg := serveConf{Workers: 2, AttemptDeadline: 2 * time.Minute, DrainTimeout: 3 * time.Second,
		GCInterval: time.Hour, Retain: time.Hour}

	// Reference: an uninterrupted run of the same input on a fresh dir.
	refDir := t.TempDir()
	refProc, refURL := startServerProc(t, refDir, cfg)
	defer refProc.Process.Kill()
	refJob, code := submit(t, refURL, "psi=20&w=10", input)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d", code)
	}
	// The reference run proceeds concurrently with the kill dance below.

	dir := t.TempDir()
	proc, base := startServerProc(t, dir, cfg)
	job, code := submit(t, base, "psi=20&w=10", input)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, job.Err)
	}
	if job.State != StateQueued {
		t.Fatalf("fresh submission in state %s", job.State)
	}

	// Kill the server the moment the attempt is visibly computing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := getStatus(t, base, job.ID)
		if err == nil && st.State == StateRunning && st.Phase != "" && st.Phase != "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started computing (last err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	// Restart on the same directory: the journal replays, the job is
	// re-adopted, and the attempt resumes through the workdir manifest
	// (racing the orphaned runner for the workdir lock is part of the
	// scenario — busy attempts requeue with backoff until it exits).
	proc2, base2 := startServerProc(t, dir, cfg)
	defer proc2.Process.Kill()
	waitState(t, base2, job.ID, StateDone, 2*time.Minute)
	got := fetchArtifact(t, base2, job.ID, "contigs")

	refFinal := waitState(t, refURL, refJob.ID, StateDone, 2*time.Minute)
	want := fetchArtifact(t, refURL, refFinal.ID, "contigs")
	if len(want) == 0 {
		t.Fatal("reference run produced no contigs")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("contigs after kill+restart differ from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}

	// Idempotent resubmission: same input + config returns the done
	// job's cached result instantly (no new job, no recompute).
	start := time.Now()
	again, code := submit(t, base2, "psi=20&w=10", input)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200", code)
	}
	if again.ID != job.ID || again.State != StateDone || !again.Cached {
		t.Fatalf("resubmit: %+v, want cached done job %s", again, job.ID)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cached resubmission took %s", d)
	}
}

// TestPoisonJobQuarantined: a job that crashes every attempt exhausts
// its retry budget and is quarantined — while a healthy job on the
// same server completes untouched.
func TestPoisonJobQuarantined(t *testing.T) {
	srv, base := startInprocServer(t, Config{
		Workers: 2, MaxAttempts: 2, AttemptDeadline: time.Minute,
		DrainTimeout: 2 * time.Second, GCInterval: time.Hour,
	})
	defer drainServer(t, srv)

	input := makeFASTA(t, 5, 2, 2000, 60)
	poison, code := submit(t, base, "fail=crash", input)
	if code != http.StatusAccepted {
		t.Fatalf("poison submit: status %d", code)
	}
	healthy, code := submit(t, base, "psi=20&w=10", input)
	if code != http.StatusAccepted {
		t.Fatalf("healthy submit: status %d", code)
	}

	q := waitState(t, base, poison.ID, StateQuarantined, 30*time.Second)
	if q.Attempts != 2 {
		t.Errorf("quarantined after %d attempts, want 2", q.Attempts)
	}
	if !strings.Contains(q.Err, "retry budget exhausted") {
		t.Errorf("quarantine error = %q", q.Err)
	}
	waitState(t, base, healthy.ID, StateDone, time.Minute)
	if c := fetchArtifact(t, base, healthy.ID, "contigs"); len(c) == 0 {
		t.Error("healthy job produced no contigs")
	}
}

// TestHangDeadlineAndQueueFull: a wedged job is killed at the attempt
// deadline (and eventually quarantined), and while it occupies the
// only queue slot new submissions are turned away with 429 +
// Retry-After.
func TestHangDeadlineAndQueueFull(t *testing.T) {
	srv, base := startInprocServer(t, Config{
		Workers: 1, MaxQueue: 1, MaxAttempts: 1,
		AttemptDeadline: 500 * time.Millisecond,
		DrainTimeout:    500 * time.Millisecond, GCInterval: time.Hour,
	})
	defer drainServer(t, srv)

	input := makeFASTA(t, 6, 2, 2000, 60)
	hang, code := submit(t, base, "fail=hang", input)
	if code != http.StatusAccepted {
		t.Fatalf("hang submit: status %d", code)
	}

	// Queue full while the hang job holds the only slot.
	resp, err := http.Post(base+"/jobs?psi=20", "text/plain", bytes.NewReader(makeFASTA(t, 7, 2, 2000, 60)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("submit over full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	q := waitState(t, base, hang.ID, StateQuarantined, 30*time.Second)
	if !strings.Contains(q.Err, "deadline") {
		t.Errorf("hang job error = %q, want deadline kill", q.Err)
	}
}

// TestSubmitValidation: malformed inputs are rejected up front.
func TestSubmitValidation(t *testing.T) {
	srv, base := startInprocServer(t, Config{Workers: 1, GCInterval: time.Hour})
	defer drainServer(t, srv)

	if _, code := submit(t, base, "", []byte("not fasta at all")); code != http.StatusBadRequest {
		t.Errorf("malformed FASTA: status %d, want 400", code)
	}
	if _, code := submit(t, base, "psi=abc", makeFASTA(t, 8, 2, 2000, 20)); code != http.StatusBadRequest {
		t.Errorf("bad psi: status %d, want 400", code)
	}
	if _, code := submit(t, base, "psi=5&w=10", makeFASTA(t, 8, 2, 2000, 20)); code != http.StatusBadRequest {
		t.Errorf("w>psi: status %d, want 400", code)
	}
	if _, code := submit(t, base, "fail=nonsense", makeFASTA(t, 8, 2, 2000, 20)); code != http.StatusBadRequest {
		t.Errorf("unknown fail mode: status %d, want 400", code)
	}
	resp, err := http.Get(base + "/jobs/jdeadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestDrainRequeuesAndRestartCompletes: a graceful drain checkpoints
// or requeues in-flight work; reopening the same directory finishes
// the job with correct output — nothing lost across the restart.
func TestDrainRequeuesAndRestartCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline runs")
	}
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 1, AttemptDeadline: 2 * time.Minute,
		DrainTimeout: 10 * time.Second, GCInterval: time.Hour, Backoff: testBackoff()}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	input := makeFASTA(t, 31, 3, 6000, 700)
	job, code := submit(t, base, "psi=20&w=10", input)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Let the attempt get going, then drain.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := getStatus(t, base, job.ID)
		if err == nil && st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainServer(t, srv)

	srv2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer drainServer(t, srv2)
	base2 := "http://" + addr2
	final := waitState(t, base2, job.ID, StateDone, 2*time.Minute)
	if final.Attempts != 0 {
		t.Errorf("drained job charged %d attempts", final.Attempts)
	}
	if c := fetchArtifact(t, base2, job.ID, "contigs"); len(c) == 0 {
		t.Error("no contigs after drain + restart")
	}
}

func startInprocServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Dir = t.TempDir()
	cfg.Backoff = testBackoff()
	cfg.Logf = t.Logf
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, "http://" + addr
}

func drainServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	srv.Drain(ctx)
}

// TestDiskStoreJobMatchesMem: a store=disk job with a spilling-GST
// budget must produce contigs byte-identical to the same input's
// in-memory job, and the two submissions must be distinct jobs (the
// fingerprint includes the backend).
func TestDiskStoreJobMatchesMem(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	input := makeFASTA(t, 23, 2, 4000, 300)
	cfg := serveConf{Workers: 2, AttemptDeadline: 2 * time.Minute, DrainTimeout: 3 * time.Second,
		GCInterval: time.Hour, Retain: time.Hour}
	dir := t.TempDir()
	proc, base := startServerProc(t, dir, cfg)
	defer proc.Process.Kill()

	memJob, code := submit(t, base, "psi=20&w=10", input)
	if code != http.StatusAccepted {
		t.Fatalf("mem submit: status %d (%s)", code, memJob.Err)
	}
	diskJob, code := submit(t, base, "psi=20&w=10&store=disk&membudget=65536", input)
	if code != http.StatusAccepted {
		t.Fatalf("disk submit: status %d (%s)", code, diskJob.Err)
	}
	if diskJob.ID == memJob.ID {
		t.Fatal("disk and mem submissions deduped to one job")
	}

	waitState(t, base, memJob.ID, StateDone, 2*time.Minute)
	waitState(t, base, diskJob.ID, StateDone, 2*time.Minute)
	want := fetchArtifact(t, base, memJob.ID, "contigs")
	got := fetchArtifact(t, base, diskJob.ID, "contigs")
	if len(want) == 0 {
		t.Fatal("mem job produced no contigs")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("disk-backed job contigs differ from in-memory job (%d vs %d bytes)", len(got), len(want))
	}

	// The job workdir must actually hold the on-disk store.
	matches, err := filepath.Glob(filepath.Join(dir, "jobs", "*", "work", "store", "store.data"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one on-disk store under the job dirs, got %v (err %v)", matches, err)
	}
}
