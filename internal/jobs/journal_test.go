package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// scriptJournal drives a plausible multi-job history through the
// Journal API and returns the written records.
func scriptJournal(t *testing.T, path string, seed int64) []Record {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replays %d records", len(recs))
	}
	defer j.Close()

	rng := rand.New(rand.NewSource(seed))
	app := func(r Record) {
		t.Helper()
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	spec := Spec{}.withDefaults()
	var ids []string
	for i := 0; i < 6; i++ {
		key := IdempotencyKey([]byte(fmt.Sprintf("input-%d-%d", seed, i)), spec)
		id := jobID(key)
		ids = append(ids, id)
		app(Record{Op: OpSubmit, Job: id, Key: key, Spec: &spec})
	}
	// Random interleaving of lifecycle steps per job.
	for step := 0; step < 40; step++ {
		id := ids[rng.Intn(len(ids))]
		// Re-derive current state by replaying what we wrote so far —
		// the test's model IS the replay function.
		jobs, _, err := replayFile(t, path)
		if err != nil {
			t.Fatal(err)
		}
		job := jobs[id]
		switch job.State {
		case StateQueued:
			if job.Attempts >= 3 {
				app(Record{Op: OpQuarantine, Job: id, Err: "retry budget exhausted"})
			} else {
				app(Record{Op: OpStart, Job: id, Attempt: job.Attempts + 1, PID: 1000 + step})
			}
		case StateRunning:
			switch rng.Intn(3) {
			case 0:
				app(Record{Op: OpDone, Job: id})
			case 1:
				app(Record{Op: OpFail, Job: id, Err: "injected"})
			case 2:
				app(Record{Op: OpRequeue, Job: id, Reason: "drain"})
			}
		case StateDone, StateQuarantined:
			if !job.GCed {
				app(Record{Op: OpGC, Job: id})
			}
		}
	}
	_, final, err := OpenJournalReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// OpenJournalReadOnly re-reads a journal without holding it open.
func OpenJournalReadOnly(path string) (*Journal, []Record, error) {
	j, recs, err := OpenJournal(path)
	if j != nil {
		j.Close()
	}
	return j, recs, err
}

func replayFile(t *testing.T, path string) (map[string]*Job, map[string]string, error) {
	t.Helper()
	_, recs, err := OpenJournalReadOnly(path)
	if err != nil {
		return nil, nil, err
	}
	jobs, byKey, err := Replay(recs)
	if err != nil {
		return nil, nil, err
	}
	return jobs, byKey, nil
}

// TestJournalCrashPointsReplayConsistently is the crash-safety
// property: truncate the journal at EVERY byte offset (a crash mid-
// append can stop anywhere) and require that recovery (a) succeeds,
// (b) replays exactly the longest whole-record prefix — no lost, no
// duplicated, no reordered jobs — and (c) yields a consistent state
// machine for every job.
func TestJournalCrashPointsReplayConsistently(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "journal")
	fullRecs := scriptJournal(t, full, 7)
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullRecs) < 25 {
		t.Fatalf("script produced only %d records", len(fullRecs))
	}

	crash := filepath.Join(dir, "crash")
	for cut := 0; cut <= len(b); cut++ {
		if err := os.WriteFile(crash, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := OpenJournal(crash)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		j.Close()
		// (b) exact prefix: seqs are 1..k with k the largest whole
		// record that fits in the cut.
		for i, r := range recs {
			if r.Seq != uint64(i)+1 {
				t.Fatalf("cut=%d: record %d has seq %d", cut, i, r.Seq)
			}
			got, _ := json.Marshal(r)
			want, _ := json.Marshal(fullRecs[i])
			if !bytes.Equal(got, want) {
				t.Fatalf("cut=%d: record %d differs from original:\n%s\n%s", cut, i, got, want)
			}
		}
		if len(recs) > 0 && cut == len(b) && len(recs) != len(fullRecs) {
			t.Fatalf("full journal replays %d of %d records", len(recs), len(fullRecs))
		}
		// (c) consistent state machine, every submit present exactly once.
		jobs, byKey, err := Replay(recs)
		if err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		submits := map[string]int{}
		for _, r := range recs {
			if r.Op == OpSubmit {
				submits[r.Job]++
			}
		}
		if len(jobs) != len(submits) {
			t.Fatalf("cut=%d: %d jobs from %d submits", cut, len(jobs), len(submits))
		}
		for id, n := range submits {
			if n != 1 {
				t.Fatalf("cut=%d: job %s submitted %d times", cut, id, n)
			}
			job := jobs[id]
			if job == nil {
				t.Fatalf("cut=%d: acknowledged job %s lost", cut, id)
			}
			if byKey[job.Key] != id {
				t.Fatalf("cut=%d: idempotency index lost %s", cut, id)
			}
			switch job.State {
			case StateQueued, StateRunning, StateDone, StateQuarantined:
			default:
				t.Fatalf("cut=%d: job %s in invalid state %q", cut, id, job.State)
			}
		}
		// (a+) recovery truncated the torn tail: appending now must
		// produce a journal that parses cleanly again.
		j2, recs2, err := OpenJournal(crash)
		if err != nil {
			t.Fatalf("cut=%d: reopen after recovery: %v", cut, err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("cut=%d: recovery not idempotent (%d then %d records)", cut, len(recs), len(recs2))
		}
		if last := len(recs2); last > 0 && recs2[last-1].Op == OpSubmit {
			// Appending after recovery continues the sequence cleanly.
			if _, err := j2.Append(Record{Op: OpStart, Job: recs2[last-1].Job, Attempt: 1, PID: 1}); err != nil {
				t.Fatalf("cut=%d: append after recovery: %v", cut, err)
			}
		}
		j2.Close()
	}
}

// TestJournalRejectsMidFileCorruption: a flipped byte in a record that
// is followed by valid ones must fail recovery loudly (acknowledged
// work would otherwise vanish), not be silently truncated.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	scriptJournal(t, path, 11)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the file.
	b[len(b)/3] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption recovered silently")
	}
}

// TestJournalSurvivesReopenAppend: sequences continue across open/
// close cycles (the restart path).
func TestJournalSurvivesReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	spec := Spec{}.withDefaults()
	key := IdempotencyKey([]byte("x"), spec)
	id := jobID(key)

	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Op: OpSubmit, Job: id, Key: key, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if _, err := j.Append(Record{Op: OpStart, Job: id, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err = OpenJournalReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("after reopen-append: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
}
