// Package jobs implements assembly-as-a-service: an HTTP job server
// backed by a crash-safe append-only journal. Submissions are
// idempotent (keyed on input + config fingerprint), attempts run as
// supervised subprocesses that checkpoint through the pipeline
// manifest, and a restart replays the journal and re-adopts whatever
// was in flight — no submission is ever lost or duplicated.
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/backoff"
	"repro/internal/seq"
)

// Config tunes the job server. Zero values get serviceable defaults.
type Config struct {
	// Dir is the service data directory: journal + per-job dirs.
	Dir string

	// Workers is the supervised worker-pool size (default 2).
	Workers int
	// MaxQueue bounds jobs in Queued+Running state; submissions over
	// the bound get 429 + Retry-After (default 32).
	MaxQueue int
	// MaxAttempts is the retry budget: a job failing this many
	// charged attempts is quarantined (default 3).
	MaxAttempts int
	// AttemptDeadline SIGKILLs an attempt that overstays (default 10m).
	AttemptDeadline time.Duration
	// DrainTimeout bounds the SIGTERM→checkpoint grace on shutdown
	// before stragglers are SIGKILLed (default 30s).
	DrainTimeout time.Duration
	// MaxInputBytes bounds a submission body (default 64 MiB).
	MaxInputBytes int64
	// QuotaBytes, when positive, bounds a job dir's size; a breaching
	// attempt is killed and charged.
	QuotaBytes int64
	// MinFreeBytes, when positive, refuses new submissions (503) while
	// the data directory's filesystem has less free space.
	MinFreeBytes uint64
	// Retain is how long a terminal job keeps its intermediate
	// artifacts before the GC sweep removes them (default 24h).
	// Cached results (contigs + report) survive GC.
	Retain time.Duration
	// GCInterval is the sweep period (default 1m).
	GCInterval time.Duration
	// Backoff schedules uncharged/charged retry delays.
	Backoff backoff.Policy

	// Logf receives operational log lines (default: silent).
	Logf func(format string, args ...any)
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.AttemptDeadline <= 0 {
		c.AttemptDeadline = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxInputBytes <= 0 {
		c.MaxInputBytes = 64 << 20
	}
	if c.Retain <= 0 {
		c.Retain = 24 * time.Hour
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.Backoff == (backoff.Policy{}) {
		c.Backoff = backoff.Policy{Base: 500 * time.Millisecond, Cap: 30 * time.Second, Jitter: 0.2}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the assembly-as-a-service front end.
type Server struct {
	cfg Config
	rng *rand.Rand

	mu    sync.Mutex
	jnl   *Journal
	jobs  map[string]*Job
	byKey map[string]string

	draining chan struct{}
	drainOne sync.Once
	wg       sync.WaitGroup // workers + gc sweep
	httpSrv  *http.Server
	addr     string
}

// Open replays the journal in cfg.Dir and builds the server. Jobs
// journaled as Running belong to a previous incarnation; they are
// re-adopted by requeueing (uncharged) — their workdir manifest
// resumes the attempt from the last completed phase.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	jnl, recs, err := OpenJournal(filepath.Join(cfg.Dir, "journal"))
	if err != nil {
		return nil, err
	}
	jobsMap, byKey, err := Replay(recs)
	if err != nil {
		jnl.Close()
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Now().UnixNano())),
		jnl:      jnl,
		jobs:     jobsMap,
		byKey:    byKey,
		draining: make(chan struct{}),
	}
	adopted := 0
	for _, job := range s.jobs {
		if job.State == StateRunning {
			s.applyLocked(Record{Op: OpRequeue, Job: job.ID, Reason: "server restart: re-adopted"})
			job.PID = 0
			adopted++
		}
	}
	if adopted > 0 {
		cfg.Logf("re-adopted %d in-flight job(s) after restart", adopted)
	}
	return s, nil
}

// Start launches the worker pool, the GC sweep, and the HTTP listener
// on addr (use "127.0.0.1:0" for an ephemeral port). The bound
// address is written to <dir>/addr for tooling discovery.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.addr = ln.Addr().String()
	if err := writeFileAtomic(filepath.Join(s.cfg.Dir, "addr"), []byte(s.addr+"\n")); err != nil {
		ln.Close()
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.handler()}
	go s.httpSrv.Serve(ln)
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.supervise(w)
	}
	s.wg.Add(1)
	go s.gcLoop()
	s.logf("serving on http://%s (dir %s, %d workers)", s.addr, s.cfg.Dir, s.cfg.Workers)
	return s.addr, nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string { return s.addr }

// Drain gracefully stops the server: new submissions get 503, running
// attempts are SIGTERMed and given DrainTimeout to checkpoint at a
// phase boundary, stragglers are SIGKILLed; either way the jobs are
// requeued in the journal for the next incarnation. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) {
	s.drainOne.Do(func() { close(s.draining) })
	s.wg.Wait()
	if s.httpSrv != nil {
		s.httpSrv.Shutdown(ctx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jnl.Close()
	s.logf("drained")
}

// applyLocked journals a transition and applies it to memory; callers
// hold s.mu. Once the journal refuses writes, the server can no
// longer uphold crash safety, so the error is fatal by design.
func (s *Server) applyLocked(r Record) Record {
	r.T = s.now().UnixNano()
	written, err := s.jnl.Append(r)
	if err != nil {
		panic(fmt.Sprintf("jobs: journal append failed, cannot continue safely: %v", err))
	}
	if err := applyRecord(s.jobs, s.byKey, written); err != nil {
		panic(fmt.Sprintf("jobs: journaled record rejected by state machine: %v", err))
	}
	return written
}

func (s *Server) jobDir(id string) string { return filepath.Join(s.cfg.Dir, "jobs", id) }
func (s *Server) now() time.Time          { return s.cfg.Now() }
func (s *Server) logf(f string, a ...any) { s.cfg.Logf("asmserve: "+f, a...) }

// ---- HTTP API ----

func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/contigs", s.handleArtifact(contigsFile, "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/report", s.handleArtifact(reportFile, "application/json"))
	mux.HandleFunc("GET /jobs/{id}/log", s.handleArtifact(runnerLogFile, "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleArtifact(profileFile, "application/octet-stream"))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// statusView is the wire form of a job's status. It embeds a COPY of
// the job, snapshotted under the server lock — encoding happens after
// the lock is released, while workers keep mutating the live struct.
type statusView struct {
	Job
	Phase        string `json:"phase,omitempty"`
	CollectorURL string `json:"collector_url,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
}

func (s *Server) view(job *Job, cached bool) statusView {
	v := statusView{Job: *job, Cached: cached}
	dir := s.jobDir(job.ID)
	if b, err := os.ReadFile(filepath.Join(dir, progressFile)); err == nil {
		v.Phase = strings.TrimSpace(string(b))
	}
	if job.State == StateRunning {
		if b, err := os.ReadFile(filepath.Join(dir, collectorFile)); err == nil {
			v.CollectorURL = strings.TrimSpace(string(b))
		}
	}
	return v
}

// handleSubmit accepts a FASTA read set and returns 202 with the job
// ID — or 200 with the existing job when the same input+config was
// submitted before (idempotency), which for finished jobs is an
// instant cached result. Degraded modes: 503 while draining or under
// disk pressure, 429 when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.cfg.MinFreeBytes > 0 {
		var st syscall.Statfs_t
		if err := syscall.Statfs(s.cfg.Dir, &st); err == nil {
			if free := st.Bavail * uint64(st.Bsize); free < s.cfg.MinFreeBytes {
				w.Header().Set("Retry-After", "60")
				http.Error(w, fmt.Sprintf("disk pressure: %d bytes free", free), http.StatusServiceUnavailable)
				return
			}
		}
	}
	spec, err := specFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxInputBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	if _, err := seq.ReadFASTA(bytes.NewReader(input)); err != nil {
		http.Error(w, "malformed FASTA: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := IdempotencyKey(input, spec)

	s.mu.Lock()
	if id, dup := s.byKey[key]; dup {
		job := s.jobs[id]
		v := s.view(job, job.State == StateDone)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, v)
		return
	}
	if n := s.activeLocked(); n >= s.cfg.MaxQueue {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "10")
		http.Error(w, fmt.Sprintf("queue full (%d active)", n), http.StatusTooManyRequests)
		return
	}
	id := jobID(key)
	dir := s.jobDir(id)
	if err := s.writeSubmission(dir, input, spec); err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.applyLocked(Record{Op: OpSubmit, Job: id, Key: key, Spec: &spec})
	job := s.jobs[id]
	v := s.view(job, false)
	s.mu.Unlock()
	s.logf("job %s submitted (%d input bytes, %s)", id, len(input), spec.Flags())
	writeJSON(w, http.StatusAccepted, v)
}

// writeSubmission persists input + spec before the submit is
// journaled: a crash in between leaves an orphan dir that a repeat
// submission reuses (same key → same dir), never a journaled job
// without its input.
func (s *Server) writeSubmission(dir string, input []byte, spec Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, inputFile), input); err != nil {
		return err
	}
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, specFile), append(b, '\n'))
}

// activeLocked counts jobs occupying queue slots.
func (s *Server) activeLocked() int {
	n := 0
	for _, job := range s.jobs {
		if !job.State.Terminal() {
			n++
		}
	}
	return n
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*Job, 0, len(s.jobs))
	for _, job := range s.jobs {
		list = append(list, job)
	}
	sortJobs(list)
	views := make([]statusView, len(list))
	for i, job := range list {
		views[i] = s.view(job, false)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var v statusView
	if ok {
		v = s.view(job, false)
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleArtifact serves a per-job result file. Artifacts of a running
// job may not exist yet — 409 tells the client to keep polling.
func (s *Server) handleArtifact(name, ctype string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		job, ok := s.jobs[id]
		var state State
		if ok {
			state = job.State
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		path := filepath.Join(s.jobDir(id), name)
		b, err := os.ReadFile(path)
		if err != nil {
			if state.Terminal() {
				http.Error(w, "artifact not available: "+err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, "job not finished (state "+string(state)+")", http.StatusConflict)
			}
			return
		}
		w.Header().Set("Content-Type", ctype)
		w.Write(b)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[State]int{}
	for _, job := range s.jobs {
		counts[job.State]++
	}
	stats := map[string]any{
		"jobs":        len(s.jobs),
		"queued":      counts[StateQueued],
		"running":     counts[StateRunning],
		"done":        counts[StateDone],
		"quarantined": counts[StateQuarantined],
		"workers":     s.cfg.Workers,
		"max_queue":   s.cfg.MaxQueue,
		"draining":    s.isDraining(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

// specFromQuery decodes a Spec from submission query parameters.
func specFromQuery(r *http.Request) (Spec, error) {
	q := r.URL.Query()
	spec := Spec{}
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad %s=%q", name, v)
		}
		*dst = n
		return nil
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"psi", &spec.Psi}, {"w", &spec.W}, {"ranks", &spec.Ranks}, {"aretries", &spec.AssemblyRetries}} {
		if err := intParam(p.name, p.dst); err != nil {
			return Spec{}, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("bad seed=%q", v)
		}
		spec.Seed = n
	}
	if v := q.Get("mask"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Spec{}, fmt.Errorf("bad mask=%q", v)
		}
		spec.Mask = b
	}
	spec.Store = q.Get("store")
	if v := q.Get("membudget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("bad membudget=%q", v)
		}
		spec.MemBudget = n
	}
	spec.FailInject = q.Get("fail")
	if v := q.Get("profile"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Spec{}, fmt.Errorf("bad profile=%q", v)
		}
		spec.Profile = b
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

