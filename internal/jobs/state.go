package jobs

import (
	"fmt"
	"sort"
	"time"
)

// State is a job's position in the lifecycle:
//
//	submit → Queued → Running → Done
//	                     │  ↘ fail (attempt charged) → Queued … → Quarantined
//	                     └─ requeue (drain / busy workdir / restart) → Queued
//
// Every transition is journaled before it takes effect, so the state
// is a pure function of the journal and replays identically after a
// crash at any point.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateQuarantined State = "quarantined"
)

// Terminal reports whether a state accepts no further transitions
// (other than artifact GC).
func (s State) Terminal() bool { return s == StateDone || s == StateQuarantined }

// Job is the replayed view of one submission.
type Job struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`

	State    State  `json:"state"`
	Attempts int    `json:"attempts"` // failed attempts charged so far
	Requeues int    `json:"requeues"` // uncharged returns to the queue
	PID      int    `json:"pid,omitempty"`
	Err      string `json:"error,omitempty"`

	SubmittedAt int64 `json:"submitted_at"` // unix nanos
	StartedAt   int64 `json:"started_at,omitempty"`
	FinishedAt  int64 `json:"finished_at,omitempty"`

	// GCed means the sweep removed the job's intermediate artifacts
	// (workdir + input); the result files, if any, remain cached.
	GCed bool `json:"gced,omitempty"`

	// notBefore gates retries (backoff); in-memory only — after a
	// restart a queued job is immediately eligible.
	notBefore time.Time
}

// Eligible reports whether the job may be picked up at t.
func (job *Job) Eligible(t time.Time) bool {
	return job.State == StateQueued && !t.Before(job.notBefore)
}

// Replay folds journal records into the job map and the idempotency
// index. A transition that is impossible from the replayed state means
// the journal is corrupt — better to refuse service than to guess.
func Replay(recs []Record) (map[string]*Job, map[string]string, error) {
	jobs := map[string]*Job{}
	byKey := map[string]string{}
	for _, r := range recs {
		if err := applyRecord(jobs, byKey, r); err != nil {
			return nil, nil, err
		}
	}
	return jobs, byKey, nil
}

// applyRecord mutates the in-memory view with one journaled
// transition. Replay (restart) and the live server apply records
// through this single function, so the state after a crash is the
// state the server was in.
func applyRecord(jobs map[string]*Job, byKey map[string]string, r Record) error {
	job := jobs[r.Job]
	if r.Op != OpSubmit && job == nil {
		return fmt.Errorf("jobs: journal record %d: %s for unknown job %s", r.Seq, r.Op, r.Job)
	}
	switch r.Op {
	case OpSubmit:
		if job != nil {
			return fmt.Errorf("jobs: journal record %d: duplicate submit of %s", r.Seq, r.Job)
		}
		if r.Spec == nil {
			return fmt.Errorf("jobs: journal record %d: submit without spec", r.Seq)
		}
		if other, dup := byKey[r.Key]; dup {
			return fmt.Errorf("jobs: journal record %d: key of %s already owned by %s", r.Seq, r.Job, other)
		}
		jobs[r.Job] = &Job{ID: r.Job, Key: r.Key, Spec: *r.Spec, State: StateQueued, SubmittedAt: r.T}
		byKey[r.Key] = r.Job
	case OpStart:
		if job.State != StateQueued {
			return badTransition(r, job.State)
		}
		job.State = StateRunning
		job.PID = r.PID
		job.StartedAt = r.T
	case OpDone:
		if job.State != StateRunning {
			return badTransition(r, job.State)
		}
		job.State = StateDone
		job.Err = ""
		job.FinishedAt = r.T
	case OpFail:
		if job.State != StateRunning {
			return badTransition(r, job.State)
		}
		job.State = StateQueued
		job.Attempts++
		job.Err = r.Err
	case OpRequeue:
		if job.State != StateRunning && job.State != StateQueued {
			return badTransition(r, job.State)
		}
		job.State = StateQueued
		job.Requeues++
	case OpQuarantine:
		if job.State.Terminal() {
			return badTransition(r, job.State)
		}
		job.State = StateQuarantined
		if r.Err != "" {
			job.Err = r.Err
		}
		job.FinishedAt = r.T
	case OpGC:
		if !job.State.Terminal() {
			return badTransition(r, job.State)
		}
		job.GCed = true
	default:
		return fmt.Errorf("jobs: journal record %d: unknown op %q", r.Seq, r.Op)
	}
	return nil
}

func badTransition(r Record, s State) error {
	return fmt.Errorf("jobs: journal record %d: %s on %s in state %s", r.Seq, r.Op, r.Job, s)
}

// sortJobs orders jobs newest-submission-first for listings.
func sortJobs(list []*Job) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].SubmittedAt != list[j].SubmittedAt {
			return list[i].SubmittedAt > list[j].SubmittedAt
		}
		return list[i].ID < list[j].ID
	})
}
