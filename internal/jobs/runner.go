package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/obs/collector"
	"repro/internal/obs/prof"
	"repro/internal/pipeline"
	"repro/internal/preprocess"
	"repro/internal/seq"
)

// runnerDirEnv marks a process as a supervised job-attempt runner.
const runnerDirEnv = "ASM_JOB_DIR"

// Runner exit codes the supervisor maps to outcomes. Anything else
// non-zero is a charged failure.
const (
	// ExitInterrupted: the run checkpointed at a phase boundary after
	// SIGTERM (graceful drain) — requeue, no attempt charged.
	ExitInterrupted = 3
	// ExitBusy: the workdir is locked by another live run (an orphan
	// from a previous server still finishing) — requeue with backoff,
	// no attempt charged; resume converges once the orphan exits.
	ExitBusy = 4
)

// Per-job directory layout (under <data>/jobs/<id>/).
const (
	inputFile     = "input.fa"
	specFile      = "spec.json"
	workDir       = "work"
	contigsFile   = "contigs.fa"
	reportFile    = "report.json"
	progressFile  = "progress"
	collectorFile = "collector.url"
	runnerLogFile = "runner.log"
	// profDir collects per-attempt profiling artifacts (PID-unique
	// stems, so an orphan attempt never clobbers its successor's
	// capture); profileFile is the cross-attempt merged CPU profile
	// the completing attempt archives, served at /jobs/{id}/profile.
	profDir     = "prof"
	profileFile = "profile.pb.gz"
)

// Report is the summary the runner writes next to the contigs — the
// cached result a repeat submission gets back instantly.
type Report struct {
	InputFragments      int   `json:"input_fragments"`
	Clusters            int   `json:"clusters"`
	Singletons          int   `json:"singletons"`
	Contigs             int   `json:"contigs"`
	ContigBases         int   `json:"contig_bases"`
	QuarantinedClusters int   `json:"quarantined_clusters,omitempty"`
	ElapsedMs           int64 `json:"elapsed_ms"`
}

// MaybeRunJob turns this process into a job runner when the
// supervisor's environment marker is present. Commands embedding the
// job service call it first thing in main; it never returns in a
// runner process.
func MaybeRunJob() bool {
	dir := os.Getenv(runnerDirEnv)
	if dir == "" {
		return false
	}
	os.Exit(RunJob(dir))
	return true // unreachable
}

// RunJob executes one attempt of the job rooted at dir and returns
// its exit code. The attempt always runs with Resume on: a fresh
// workdir starts from scratch, a crashed or drained one picks up at
// the last journaled phase boundary, and a finished one just reloads
// its artifacts — all byte-identical by the pipeline's manifest
// contract.
func RunJob(dir string) int {
	var spec Spec
	if err := readJSON(filepath.Join(dir, specFile), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "runner:", err)
		return 1
	}
	spec = spec.withDefaults()
	id := filepath.Base(dir)

	switch spec.FailInject {
	case "crash":
		fmt.Fprintln(os.Stderr, "runner: fail_inject=crash: injected failure")
		return 1
	case "hang":
		fmt.Fprintln(os.Stderr, "runner: fail_inject=hang: wedging forever")
		select {}
	}

	// Graceful drain: SIGTERM requests a checkpoint at the next phase
	// boundary instead of killing the attempt mid-phase.
	interrupt := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigs
		close(interrupt)
	}()

	f, err := os.Open(filepath.Join(dir, inputFile))
	if err != nil {
		fmt.Fprintln(os.Stderr, "runner:", err)
		return 1
	}
	recs, err := seq.ReadFASTA(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "runner: malformed input:", err)
		return 1
	}
	frags := make([]*seq.Fragment, len(recs))
	for i, rec := range recs {
		frags[i] = &seq.Fragment{Name: rec.Name, Bases: rec.Bases}
	}

	// Per-job telemetry: this attempt serves its own run collector so
	// asmtop (pointed at the URL from the job status) can attach live.
	tr := obs.NewTracer(spec.Ranks, obs.DefaultRingCap)
	reg := obs.NewRegistry()
	var rep *collector.Reporter
	_, colSrv, colURL, err := launch.StartCollector(collector.Config{Ranks: spec.Ranks, Job: id}, "127.0.0.1:0", "", 0)
	if err == nil {
		writeFileAtomic(filepath.Join(dir, collectorFile), []byte(colURL+"\n"))
		rep = collector.StartReporter(collector.ReporterConfig{
			URL: colURL, Rank: 0, Covers: launch.AllRanks(spec.Ranks), Job: id,
			Tracer: tr, Registry: reg,
		})
		defer colSrv.Close()
	} else {
		// Telemetry must never take the job down.
		fmt.Fprintln(os.Stderr, "runner: collector disabled:", err)
	}

	// Profiling session: artifacts under <job>/prof with a PID-unique
	// stem. A SIGKILLed attempt leaves a truncated CPU stream behind;
	// the completing attempt's merge skips what cannot parse, so the
	// archived profile is reproducible whatever happened in between.
	var profSess *prof.Session
	if spec.Profile {
		s, perr := prof.Start(prof.Config{
			Dir:      filepath.Join(dir, profDir),
			Name:     fmt.Sprintf("rank0-p%d", os.Getpid()),
			Registry: reg,
		})
		if perr != nil {
			// Profiling must never take the job down.
			fmt.Fprintln(os.Stderr, "runner: profiling disabled:", perr)
		} else {
			profSess = s
		}
	}
	stopProf := func() {
		if profSess == nil {
			return
		}
		arts, perr := profSess.Stop()
		profSess = nil
		if perr != nil {
			fmt.Fprintln(os.Stderr, "runner: profile stop:", perr)
			return
		}
		// Best-effort upload so the collector's /profiles plane can
		// serve the cross-rank merge while artifacts stay job-local.
		if rep != nil {
			if data, rerr := os.ReadFile(arts.CPU); rerr == nil {
				if uerr := rep.PostProfile(filepath.Base(arts.CPU), data); uerr != nil {
					fmt.Fprintln(os.Stderr, "runner: profile upload:", uerr)
				}
			}
		}
	}

	cfg := core.DefaultConfig()
	cfg.Cluster.Psi = spec.Psi
	cfg.Cluster.W = spec.W
	cfg.PreprocessEnabled = spec.Mask
	if spec.Mask {
		rng := rand.New(rand.NewSource(spec.Seed))
		sample := preprocess.Sample(rng, frags, 0.3)
		cfg.Preprocess.Repeats = preprocess.DetectRepeats(sample, 16, 4)
	}
	if spec.Ranks >= 2 {
		cfg.Parallel = cluster.DefaultParallelConfig(spec.Ranks)
		cfg.Parallel.Trace = tr
		cfg.Parallel.Metrics = reg
	}
	cfg.AssemblyGuard = &assembly.Guard{
		Retries: spec.AssemblyRetries,
		Backoff: 10 * time.Millisecond,
		Trace:   tr,
		Metrics: reg,
	}
	if spec.Store == "disk" {
		// Dir is left empty: the pipeline anchors the store under the
		// job's workdir and journals it in the manifest, so resumed
		// attempts reopen the same bytes.
		cfg.Store = core.StoreConfig{Backend: core.StoreDisk}
	}
	cfg.Cluster.MemBudget = spec.MemBudget

	started := time.Now()
	res, err := pipeline.Run(frags, pipeline.Config{
		Core:      cfg,
		Workdir:   filepath.Join(dir, workDir),
		Resume:    true,
		Flags:     spec.Flags(),
		Interrupt: interrupt,
		OnPhase: func(p pipeline.Phase) {
			writeFileAtomic(filepath.Join(dir, progressFile), []byte(string(p)+"\n"))
		},
	})
	if err != nil {
		stopProf()
		switch {
		case errors.Is(err, pipeline.ErrInterrupted):
			rep.Close(nil, false, "interrupted: checkpointed at phase boundary")
			fmt.Fprintln(os.Stderr, "runner:", err)
			return ExitInterrupted
		case errors.Is(err, pipeline.ErrWorkdirLocked):
			rep.Close(nil, false, "workdir busy")
			fmt.Fprintln(os.Stderr, "runner:", err)
			return ExitBusy
		default:
			rep.Close(nil, false, err.Error())
			fmt.Fprintln(os.Stderr, "runner:", err)
			return 1
		}
	}

	defer res.Close()
	stopProf()
	if spec.Profile {
		if merr := writeMergedProfile(dir); merr != nil {
			// The job result stands; only the profile archive is lost.
			fmt.Fprintln(os.Stderr, "runner: profile merge:", merr)
		}
	}
	if err := writeResults(dir, res, started); err != nil {
		rep.Close(nil, false, err.Error())
		fmt.Fprintln(os.Stderr, "runner:", err)
		return 1
	}
	writeFileAtomic(filepath.Join(dir, progressFile), []byte("done\n"))
	rep.Close(nil, true, "")
	return 0
}

// writeMergedProfile folds every parseable CPU artifact under the
// job's prof/ directory — this attempt's plus whatever earlier
// (possibly SIGKILLed, possibly truncated) attempts left behind —
// into the archived merged profile. Atomic via WriteFile's
// temp+rename, and written only by the attempt that completed the
// job, so a racing orphan can at worst leave extra inputs, never a
// torn archive.
func writeMergedProfile(dir string) error {
	cpus, _, _ := prof.DirArtifacts(filepath.Join(dir, profDir))
	ps, skipped, err := prof.ParseFiles(cpus)
	if err != nil {
		return err
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "runner: skipping %d truncated profile artifact(s)\n", len(skipped))
	}
	if len(ps) == 0 {
		return fmt.Errorf("no parseable CPU profiles under %s", filepath.Join(dir, profDir))
	}
	merged, err := prof.Merge(ps...)
	if err != nil {
		return err
	}
	return merged.WriteFile(filepath.Join(dir, profileFile))
}

// writeResults persists the contigs and summary report atomically, so
// a crash mid-write never leaves a half-result behind a valid name.
func writeResults(dir string, res *core.Result, started time.Time) error {
	var contigRecs []seq.Record
	bases := 0
	for ci, cs := range res.Contigs {
		for ki, c := range cs {
			contigRecs = append(contigRecs, seq.Record{
				Name:  fmt.Sprintf("contig_%d_%d len=%d reads=%d depth=%.1f", ci, ki, len(c.Bases), len(c.Reads), c.Depth),
				Bases: c.Bases,
			})
			bases += len(c.Bases)
		}
	}
	var buf []byte
	{
		var sb writerBuf
		if err := seq.WriteFASTA(&sb, contigRecs, 0); err != nil {
			return fmt.Errorf("encode contigs: %w", err)
		}
		buf = sb
	}
	if err := writeFileAtomic(filepath.Join(dir, contigsFile), buf); err != nil {
		return err
	}
	rpt := Report{
		InputFragments: res.Store.N(),
		Clusters:       len(res.Clusters),
		Singletons:     len(res.Singletons),
		Contigs:        res.TotalContigs(),
		ContigBases:    bases,
		ElapsedMs:      time.Since(started).Milliseconds(),
	}
	rpt.QuarantinedClusters = len(res.Quarantined())
	b, err := json.MarshalIndent(rpt, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, reportFile), append(b, '\n'))
}

// writerBuf is a minimal io.Writer onto a byte slice.
type writerBuf []byte

func (w *writerBuf) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// writeFileAtomic writes via temp file + rename. Best-effort callers
// (progress markers) may ignore the error.
func writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
