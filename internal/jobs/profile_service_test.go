package jobs

import (
	"net/http"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs/prof"
)

// TestProfiledJobSurvivesKill is the profiling-plane acceptance
// scenario: a profile=1 job is SIGKILLed mid-attempt (leaving a
// truncated CPU stream behind), the restarted server resumes and
// finishes it, and the merged profile artifact served at
// /jobs/{id}/profile decodes with the in-repo reader, built from
// whatever per-attempt artifacts survived.
func TestProfiledJobSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	input := makeFASTA(t, 41, 3, 6000, 700)
	cfg := serveConf{Workers: 2, AttemptDeadline: 2 * time.Minute, DrainTimeout: 3 * time.Second,
		GCInterval: time.Hour, Retain: time.Hour}
	dir := t.TempDir()
	proc, base := startServerProc(t, dir, cfg)

	job, code := submit(t, base, "psi=20&w=10&ranks=4&profile=1", input)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, job.Err)
	}

	// Kill the server once the attempt is visibly computing under the
	// profiler.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := getStatus(t, base, job.ID)
		if err == nil && st.State == StateRunning && st.Phase != "" && st.Phase != "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started computing (last err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()

	proc2, base2 := startServerProc(t, dir, cfg)
	defer proc2.Process.Kill()
	waitState(t, base2, job.ID, StateDone, 2*time.Minute)

	if c := fetchArtifact(t, base2, job.ID, "contigs"); len(c) == 0 {
		t.Error("no contigs after kill + restart")
	}
	data := fetchArtifact(t, base2, job.ID, "profile")
	p, err := prof.Parse(data)
	if err != nil {
		t.Fatalf("merged profile artifact does not decode: %v", err)
	}
	if len(p.Samples) == 0 {
		t.Fatal("merged profile has no samples")
	}
	if p.ValueIndex("cpu") < 0 {
		t.Fatalf("merged profile sample types %v lack cpu", p.SampleTypes)
	}
	var rankLabeled, phaseLabeled int
	for i := range p.Samples {
		if p.Samples[i].Label(prof.LabelRank) != "" {
			rankLabeled++
		}
		if p.Samples[i].Label(prof.LabelPhase) != "" {
			phaseLabeled++
		}
	}
	if rankLabeled == 0 {
		t.Errorf("none of %d merged samples carry a rank label", len(p.Samples))
	}
	t.Logf("merged profile: %d samples, %d rank-labeled, %d phase-labeled", len(p.Samples), rankLabeled, phaseLabeled)

	// The per-attempt artifacts the merge was built from are still on
	// disk (PID-unique stems keep the killed attempt's truncated
	// stream from clobbering the resumed one) — asmprof can reproduce
	// the report from them.
	arts, err := filepath.Glob(filepath.Join(dir, "jobs", job.ID, "prof", "*"+prof.SuffixCPU))
	if err != nil || len(arts) == 0 {
		t.Fatalf("no per-attempt CPU artifacts on disk (err %v)", err)
	}
	ps, skipped, err := prof.ParseFiles(arts)
	if err != nil {
		t.Fatalf("re-parsing per-attempt artifacts: %v", err)
	}
	if len(ps) == 0 {
		t.Fatal("no parseable per-attempt artifacts")
	}
	if _, err := prof.Merge(ps...); err != nil {
		t.Fatalf("re-merging per-attempt artifacts: %v", err)
	}
	t.Logf("per-attempt artifacts: %d parseable, %d skipped (truncated)", len(ps), len(skipped))
}
