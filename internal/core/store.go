package core

import (
	"fmt"
	"os"

	"repro/internal/seq"
	"repro/internal/seq/diskstore"
)

// Store backend names for StoreConfig.Backend.
const (
	StoreMem  = "mem"
	StoreDisk = "disk"
)

// StoreConfig selects the sequence-store backend the pipeline runs
// over: the in-memory store (every fragment resident), or the
// disk-backed store (2-bit packed bases on disk behind a bounded block
// cache — the out-of-core mode, pair it with Cluster.MemBudget to
// bound GST memory too).
type StoreConfig struct {
	// Backend is "mem" (default when empty) or "disk".
	Backend string
	// Dir holds the disk backend's files. Empty: a temporary
	// directory, removed when the Result is closed. The checkpointed
	// pipeline defaults it to <workdir>/store instead, so a resumed
	// run reopens the same bytes.
	Dir string
	// CacheBytes bounds the disk backend's block cache
	// (default diskstore.DefaultCacheBytes).
	CacheBytes int64
}

// OpenStore materializes the fragments under the configured backend.
// The returned cleanup (nil for the in-memory backend) releases file
// handles and deletes the store directory if it was a temp dir.
func OpenStore(frags []*seq.Fragment, cfg StoreConfig) (seq.Seqs, func() error, error) {
	switch cfg.Backend {
	case "", StoreMem:
		return seq.NewStore(frags), nil, nil
	case StoreDisk:
		dir := cfg.Dir
		temp := false
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "asmstore-"); err != nil {
				return nil, nil, fmt.Errorf("core: store dir: %w", err)
			}
			temp = true
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("core: store dir: %w", err)
		}
		st, err := diskstore.Create(dir, frags, diskstore.Options{CacheBytes: cfg.CacheBytes})
		if err != nil {
			if temp {
				os.RemoveAll(dir)
			}
			return nil, nil, fmt.Errorf("core: disk store: %w", err)
		}
		cleanup := func() error {
			err := st.Close()
			if temp {
				if rerr := os.RemoveAll(dir); err == nil {
					err = rerr
				}
			}
			return err
		}
		return st, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown store backend %q", cfg.Backend)
	}
}
