package core

import (
	"math/rand"
	"testing"

	"repro/internal/preprocess"
	"repro/internal/simulate"
)

func smallWorkload(seed int64) *simulate.MaizeData {
	return simulate.MaizeLike(rand.New(rand.NewSource(seed)), 60000)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cluster.Psi = 18
	cfg.Cluster.W = 9
	cfg.Preprocess.Trim.Vector = simulate.DefaultReadConfig().Vector
	return cfg
}

func TestPipelineEndToEndSerial(t *testing.T) {
	m := smallWorkload(1)
	cfg := smallConfig()

	// Known-repeat masking from the planted repeats.
	var reps [][]byte
	for _, r := range m.Genome.Repeats {
		reps = append(reps, m.Genome.Seq[r.Span.Start:r.Span.End])
	}
	cfg.Preprocess.Repeats = preprocess.NewRepeatDBFromSeqs(reps, 16)

	res, err := Run(m.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PreprocessStats.FragsBefore == 0 || res.PreprocessStats.FragsAfter == 0 {
		t.Fatalf("preprocessing did not run: %+v", res.PreprocessStats)
	}
	if res.Store.N() != res.PreprocessStats.FragsAfter {
		t.Error("store size disagrees with preprocess stats")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters formed")
	}
	if res.Clustering.Stats.Generated == 0 {
		t.Error("no pairs generated")
	}
	if len(res.Contigs) != len(res.Clusters) {
		t.Fatalf("contigs for %d of %d clusters", len(res.Contigs), len(res.Clusters))
	}
	cpc := res.ContigsPerCluster()
	if cpc < 1.0 || cpc > 3.0 {
		t.Errorf("contigs per cluster %.2f; paper reports ≈1.1", cpc)
	}
	if res.TotalContigs() == 0 {
		t.Error("no contigs")
	}
}

func TestPipelineParallelMatchesSerial(t *testing.T) {
	m := smallWorkload(2)
	cfg := smallConfig()
	cfg.PreprocessEnabled = false // keep the fragment set identical
	cfg.SkipAssembly = true

	serial, err := Run(m.MF, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Parallel.Ranks = 4
	parallel, err := Run(m.MF, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Clusters) != len(parallel.Clusters) {
		t.Fatalf("serial %d clusters, parallel %d", len(serial.Clusters), len(parallel.Clusters))
	}
	if len(serial.Singletons) != len(parallel.Singletons) {
		t.Fatalf("singletons differ: %d vs %d", len(serial.Singletons), len(parallel.Singletons))
	}
	if parallel.Phases.Cluster.MaxModeled <= 0 {
		t.Error("parallel phases not recorded")
	}
}

func TestSkipAssembly(t *testing.T) {
	m := smallWorkload(3)
	cfg := smallConfig()
	cfg.SkipAssembly = true
	res, err := Run(m.HC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contigs != nil {
		t.Error("assembly ran despite SkipAssembly")
	}
	if res.ContigsPerCluster() != 0 {
		t.Error("ContigsPerCluster must be 0 without assembly")
	}
}
