// Package core is the public face of the framework: the
// cluster-then-assemble pipeline of Fig. 1. Input fragments are
// preprocessed (trimmed, vector-screened, repeat-masked), partitioned
// into clusters by the parallel (or serial) clustering engine, and
// each cluster is assembled independently into contigs.
package core

import (
	"runtime"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/preprocess"
	"repro/internal/seq"
)

// Config assembles the per-stage configurations.
type Config struct {
	// Preprocess runs when Enabled; otherwise fragments enter
	// clustering as-is.
	Preprocess        preprocess.Config
	PreprocessEnabled bool

	// Store selects the sequence-store backend (in-memory, or the
	// out-of-core disk store).
	Store StoreConfig

	// Cluster holds the algorithmic clustering parameters.
	Cluster cluster.Config
	// Parallel enables the master–worker engine when Ranks ≥ 2;
	// otherwise clustering runs serially.
	Parallel cluster.ParallelConfig

	// Assembly holds the per-cluster assembler parameters.
	Assembly assembly.Config
	// AssemblyGuard, when non-nil, assembles each cluster under a
	// retry/quarantine budget: a panicking or deadline-blowing
	// cluster is retried with backoff, then emitted as singleton
	// contigs instead of aborting the pipeline.
	AssemblyGuard *assembly.Guard
	// AssemblyWorkers farms clusters over this many goroutines
	// (default: GOMAXPROCS).
	AssemblyWorkers int
	// SkipAssembly stops after clustering (the paper reports
	// clustering and assembly separately).
	SkipAssembly bool

	// Transport, when non-nil, runs the parallel clustering as one
	// rank of a multi-process machine: this process executes only
	// TransportRank, reaching its peers through the transport (each
	// rank is its own OS process). Worker ranks (TransportRank ≠ 0)
	// stop after clustering with a nil Clustering result — only the
	// master carries the partition forward into assembly.
	Transport par.Transport
	// TransportRank is this process's rank when Transport is set.
	TransportRank int
}

// DefaultConfig returns a serial pipeline with paper-like parameters.
func DefaultConfig() Config {
	return Config{
		Preprocess:        preprocess.Config{Trim: preprocess.DefaultTrimConfig()},
		PreprocessEnabled: true,
		Cluster:           cluster.DefaultConfig(),
		Assembly:          assembly.DefaultConfig(),
	}
}

// Result is everything a pipeline run produces.
type Result struct {
	// PreprocessStats is zero unless preprocessing ran.
	PreprocessStats preprocess.Stats
	// Store holds the fragments that entered clustering.
	Store seq.Seqs
	// Clustering is the raw clustering result with its statistics.
	Clustering *cluster.Result
	// Phases carries per-phase machine statistics for parallel runs.
	Phases cluster.PhaseStats
	// Clusters and Singletons partition the fragments.
	Clusters   [][]int
	Singletons []int
	// Contigs per cluster (same order as Clusters); nil when assembly
	// was skipped.
	Contigs [][]assembly.Contig
	// AssemblyOutcomes has one entry per cluster when a guard ran;
	// nil otherwise.
	AssemblyOutcomes []assembly.Outcome

	// closeStore releases the store backend (disk backend only).
	closeStore func() error
}

// SetStoreCloser registers the cleanup Close runs — for wrappers (the
// checkpointed pipeline) that open the store themselves. A nil closer
// leaves Close a no-op.
func (r *Result) SetStoreCloser(c func() error) { r.closeStore = c }

// Close releases the store backend's resources: a no-op for the
// in-memory backend; for the disk backend it closes the store files
// and removes them if they lived in a run-private temp dir. Idempotent.
func (r *Result) Close() error {
	if r.closeStore == nil {
		return nil
	}
	c := r.closeStore
	r.closeStore = nil
	return c()
}

// Quarantined lists the cluster indices whose assembly was
// quarantined (empty without a guard).
func (r *Result) Quarantined() []int {
	var out []int
	for i, o := range r.AssemblyOutcomes {
		if o.Quarantined {
			out = append(out, i)
		}
	}
	return out
}

// ContigsPerCluster returns the mean number of contigs per
// multi-fragment cluster, the paper's 1.1 specificity indicator
// (Section 8).
func (r *Result) ContigsPerCluster() float64 {
	if len(r.Contigs) == 0 {
		return 0
	}
	total := 0
	for _, cs := range r.Contigs {
		total += len(cs)
	}
	return float64(total) / float64(len(r.Contigs))
}

// TotalContigs counts contigs across clusters.
func (r *Result) TotalContigs() int {
	total := 0
	for _, cs := range r.Contigs {
		total += len(cs)
	}
	return total
}

// Run executes the pipeline on the given fragments. It returns an
// error when the parallel machine is misconfigured or a fault run
// loses so many workers the clustering cannot finish.
func Run(frags []*seq.Fragment, cfg Config) (*Result, error) {
	res := &Result{}
	if cfg.PreprocessEnabled {
		frags, res.PreprocessStats = preprocess.Run(frags, cfg.Preprocess)
	}
	var err error
	if res.Store, res.closeStore, err = OpenStore(frags, cfg.Store); err != nil {
		return nil, err
	}

	if cfg.Parallel.Ranks >= 2 {
		var err error
		if cfg.Transport != nil {
			res.Clustering, _, _, err = cluster.ParallelRank(res.Store, cfg.Cluster, cfg.Parallel, cfg.TransportRank, cfg.Transport)
			if err != nil {
				return nil, err
			}
			if cfg.TransportRank != 0 {
				return res, nil // worker process: clustering only
			}
		} else {
			res.Clustering, res.Phases, err = cluster.Parallel(res.Store, cfg.Cluster, cfg.Parallel)
			if err != nil {
				return nil, err
			}
		}
	} else {
		res.Clustering = cluster.Serial(res.Store, cfg.Cluster)
	}
	res.Clusters = res.Clustering.Clusters()
	res.Singletons = res.Clustering.Singletons()

	if !cfg.SkipAssembly {
		workers := cfg.AssemblyWorkers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if cfg.AssemblyGuard != nil {
			res.Contigs, res.AssemblyOutcomes = assembly.AssembleAllGuarded(
				res.Store, res.Clusters, cfg.Assembly, workers, *cfg.AssemblyGuard)
		} else {
			res.Contigs = assembly.AssembleAll(res.Store, res.Clusters, cfg.Assembly, workers)
		}
	}
	return res, nil
}
