package validate

import "repro/internal/assembly"

// Mate-pair consistency: clone mates should land in the same contig,
// facing each other, separated by roughly the clone length. Violations
// indicate misassembly — the classical use of clone-mate information
// the paper describes in Section 1.

// MateMetrics summarizes mate placement across an assembly.
type MateMetrics struct {
	Pairs         int // mate pairs whose reads are both placed
	SameContig    int // both mates in one contig
	Consistent    int // same contig, opposite strands, sane separation
	BadSeparation int // same contig but separation outside tolerance
	BadOrient     int // same contig but same strand
}

// ConsistencyRate returns Consistent/SameContig (1 if no co-placed
// pairs).
func (m MateMetrics) ConsistencyRate() float64 {
	if m.SameContig == 0 {
		return 1
	}
	return float64(m.Consistent) / float64(m.SameContig)
}

// Mates checks each (forwardFrag, reverseFrag, insertLen) triple
// against the contigs. tolerance is the allowed deviation of the
// observed mate separation from the clone length.
func Mates(contigs []assembly.Contig, pairs [][3]int, tolerance int) MateMetrics {
	type place struct {
		contig int
		off    int
		rev    bool
		ok     bool
	}
	where := make(map[int]place)
	for ci, c := range contigs {
		for _, p := range c.Reads {
			where[p.Frag] = place{contig: ci, off: p.Offset, rev: p.Reverse, ok: true}
		}
	}
	var m MateMetrics
	for _, pr := range pairs {
		f, ok1 := where[pr[0]]
		r, ok2 := where[pr[1]]
		if !ok1 || !ok2 {
			continue
		}
		m.Pairs++
		if f.contig != r.contig {
			continue
		}
		m.SameContig++
		if f.rev == r.rev {
			m.BadOrient++
			continue
		}
		sep := f.off - r.off
		if sep < 0 {
			sep = -sep
		}
		insert := pr[2]
		if sep < insert-tolerance || sep > insert+tolerance {
			m.BadSeparation++
			continue
		}
		m.Consistent++
	}
	return m
}
