package validate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func frag(name, source string, start, end int) *seq.Fragment {
	bases := make([]byte, end-start)
	for i := range bases {
		bases[i] = 'A' // unmasked placeholder sequence
	}
	return &seq.Fragment{
		Name:   name,
		Bases:  bases,
		Origin: &seq.Origin{Source: source, Start: start, End: end},
	}
}

func TestClusterMetricsPureAndMixed(t *testing.T) {
	frags := []*seq.Fragment{
		frag("a0", "A", 0, 100),
		frag("a1", "A", 50, 150),
		frag("b0", "B", 0, 100),
		frag("b1", "B", 60, 160),
		frag("a2", "A", 400, 500), // disjoint region of A
	}
	st := seq.NewStore(frags)
	clusters := [][]int{{0, 1}, {2, 3, 4}} // second cluster mixes B and A
	labels := ClusterOf(st.N(), clusters)
	m := Clusters(st, clusters, labels, 40)
	if m.Clusters != 2 || m.SourcePure != 1 || m.RegionPure != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Specificity() != 0.5 {
		t.Errorf("specificity = %g", m.Specificity())
	}
}

func TestClusterMetricsRegionPurity(t *testing.T) {
	frags := []*seq.Fragment{
		frag("a0", "A", 0, 100),
		frag("a1", "A", 80, 180),
		frag("a2", "A", 500, 600), // same source, disconnected region
	}
	st := seq.NewStore(frags)
	clusters := [][]int{{0, 1, 2}}
	m := Clusters(st, clusters, ClusterOf(st.N(), clusters), 40)
	if m.SourcePure != 1 || m.RegionPure != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestSplitViolations(t *testing.T) {
	frags := []*seq.Fragment{
		frag("a0", "A", 0, 100),
		frag("a1", "A", 20, 120),  // overlaps a0 by 80
		frag("a2", "A", 110, 210), // overlaps a1 by 10 < minOverlap
	}
	st := seq.NewStore(frags)
	clusters := [][]int{{0}, {1}, {2}} // everything split
	m := Clusters(st, clusters, ClusterOf(st.N(), clusters), 40)
	if m.OverlapPairsChecked != 1 {
		t.Fatalf("checked %d pairs, want 1", m.OverlapPairsChecked)
	}
	if m.SplitViolations != 1 {
		t.Errorf("violations = %d", m.SplitViolations)
	}
	if m.SplitRate() != 1.0 {
		t.Errorf("split rate = %g", m.SplitRate())
	}
}

// TestEndToEndValidation runs the full cluster→assemble path on
// simulated islands and checks the headline quantities: specificity
// near 1, no false splits, and low consensus error.
func TestEndToEndValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genomes := map[string][]byte{}
	var frags []*seq.Fragment
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 300
	rc.LenSD = 20
	rc.VectorProb = 0
	for gi := 0; gi < 3; gi++ {
		g := simulate.NewGenome(rng, fmt.Sprintf("g%d", gi), simulate.GenomeConfig{Length: 2500})
		genomes[g.Name] = g.Seq
		for i := 0; i < 40; i++ {
			start := (i * 57) % (2500 - 310)
			frags = append(frags, simulate.SampleAt(rng, g, rc, start, fmt.Sprintf("g%d_r%d", gi, i)))
		}
	}
	st := seq.NewStore(frags)
	cfg := cluster.DefaultConfig()
	cfg.Psi = 16
	cfg.W = 8
	res := cluster.Serial(st, cfg)

	groups := res.UF.Groups()
	labels := ClusterOf(st.N(), groups)
	cm := Clusters(st, res.Clusters(), labels, cfg.Criteria.MinOverlap*2)
	if cm.Specificity() < 0.99 {
		t.Errorf("specificity %.3f; reads of distinct random genomes must not co-cluster", cm.Specificity())
	}
	if cm.SplitViolations != 0 {
		t.Errorf("%d false splits of %d checked", cm.SplitViolations, cm.OverlapPairsChecked)
	}

	var contigs []assembly.Contig
	for _, cl := range res.Clusters() {
		contigs = append(contigs, assembly.AssembleCluster(st, cl, assembly.DefaultConfig())...)
	}
	am := Contigs(st, contigs, genomes)
	if am.Evaluated == 0 {
		t.Fatal("no contigs evaluated")
	}
	if am.Chimeric != 0 {
		t.Errorf("%d chimeric contigs", am.Chimeric)
	}
	if am.MeanIdentity < 0.98 {
		t.Errorf("mean contig identity %.4f", am.MeanIdentity)
	}
	if am.ErrorsPer10kb > 200 {
		t.Errorf("errors per 10kb = %.1f", am.ErrorsPer10kb)
	}
}

func TestContigMetricsChimeraDetection(t *testing.T) {
	frags := []*seq.Fragment{
		frag("a", "A", 0, 100),
		frag("b", "B", 0, 100),
	}
	st := seq.NewStore(frags)
	contigs := []assembly.Contig{{
		Bases: make([]byte, 150),
		Reads: []assembly.Placement{{Frag: 0}, {Frag: 1}},
	}}
	m := Contigs(st, contigs, map[string][]byte{"A": make([]byte, 200), "B": make([]byte, 200)})
	if m.Chimeric != 1 {
		t.Errorf("chimera not detected: %+v", m)
	}
}
