// Package validate measures clustering and assembly quality against
// the simulator's ground truth. The paper validates by mapping reads
// to a published benchmark assembly with BLASTN (98.7 % of clusters
// map to a single benchmark sequence, Section 9.1) and by aligning
// contigs to finished genes (<1 error per 10,000 bases, Section 8);
// here each read carries its true origin, a strictly stronger oracle.
package validate

import (
	"sort"

	"repro/internal/align"
	"repro/internal/assembly"
	"repro/internal/seq"
)

// ClusterMetrics summarizes clustering quality.
type ClusterMetrics struct {
	Clusters int // multi-fragment clusters evaluated
	// SourcePure clusters draw all reads from one source sequence —
	// the paper's "maps to a single benchmark sequence".
	SourcePure int
	// RegionPure clusters are source-pure and their reads' true spans
	// form one contiguous stretch.
	RegionPure int
	// SplitViolations counts truly-overlapping adjacent read pairs
	// that ended up in different clusters (false splits; the
	// correctness property of Section 3).
	SplitViolations int
	// OverlapPairsChecked is the denominator for SplitViolations.
	OverlapPairsChecked int
}

// Specificity returns SourcePure/Clusters.
func (m ClusterMetrics) Specificity() float64 {
	if m.Clusters == 0 {
		return 0
	}
	return float64(m.SourcePure) / float64(m.Clusters)
}

// SplitRate returns SplitViolations/OverlapPairsChecked.
func (m ClusterMetrics) SplitRate() float64 {
	if m.OverlapPairsChecked == 0 {
		return 0
	}
	return float64(m.SplitViolations) / float64(m.OverlapPairsChecked)
}

// Clusters evaluates a clustering against read origins. minOverlap is
// the true-overlap threshold for the false-split check: adjacent reads
// of one source overlapping by at least this many bases must share a
// cluster. Fragments without Origin are ignored.
func Clusters(store *seq.Store, clusters [][]int, clusterOf []int, minOverlap int) ClusterMetrics {
	var m ClusterMetrics
	for _, cl := range clusters {
		if len(cl) < 2 {
			continue
		}
		m.Clusters++
		type span struct{ start, end int }
		var spans []span
		source := ""
		pure := true
		for _, fid := range cl {
			o := store.Fragment(fid).Origin
			if o == nil {
				pure = false
				break
			}
			if source == "" {
				source = o.Source
			} else if source != o.Source {
				pure = false
				break
			}
			spans = append(spans, span{o.Start, o.End})
		}
		if !pure {
			continue
		}
		m.SourcePure++
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		contiguous := true
		maxEnd := spans[0].end
		for _, s := range spans[1:] {
			if s.start > maxEnd {
				contiguous = false
				break
			}
			if s.end > maxEnd {
				maxEnd = s.end
			}
		}
		if contiguous {
			m.RegionPure++
		}
	}

	// False-split check: for each source, walk reads by start position
	// and require truly overlapping neighbours to co-cluster.
	bySource := make(map[string][]int)
	for i := 0; i < store.N(); i++ {
		if o := store.Fragment(i).Origin; o != nil {
			bySource[o.Source] = append(bySource[o.Source], i)
		}
	}
	for _, fids := range bySource {
		// Heavily masked reads may have lost the overlapping sequence
		// to repeat masking, so their splits are masking-induced, not
		// clustering failures; restrict the check to mostly-unmasked
		// reads (the paper's finished-gene benchmarks are unmasked).
		var usable []int
		for _, fid := range fids {
			if seq.MaskedFraction(store.Fragment(fid).Bases) <= 0.1 {
				usable = append(usable, fid)
			}
		}
		sort.Slice(usable, func(i, j int) bool {
			return store.Fragment(usable[i]).Origin.Start < store.Fragment(usable[j]).Origin.Start
		})
		for i := 1; i < len(usable); i++ {
			a := store.Fragment(usable[i-1]).Origin
			b := store.Fragment(usable[i]).Origin
			if a.End-b.Start >= minOverlap {
				m.OverlapPairsChecked++
				if clusterOf[usable[i-1]] != clusterOf[usable[i]] {
					m.SplitViolations++
				}
			}
		}
	}
	return m
}

// ClusterOf builds the fragment → cluster-label map from groups
// (including singletons), labeling each cluster by its smallest member.
func ClusterOf(n int, groups [][]int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	for _, g := range groups {
		for _, f := range g {
			labels[f] = g[0]
		}
	}
	return labels
}

// ContigMetrics summarizes assembly accuracy against true genomes.
type ContigMetrics struct {
	Contigs       int
	Evaluated     int // contigs with ≥2 reads and a known source
	Chimeric      int // contigs mixing reads from different sources
	MeanIdentity  float64
	ErrorsPer10kb float64
	TotalColumns  int
}

// Contigs aligns each multi-read contig against the region of its true
// source genome that its reads claim, and accumulates error rates.
func Contigs(store *seq.Store, contigs []assembly.Contig, genomes map[string][]byte) ContigMetrics {
	var m ContigMetrics
	idSum := 0.0
	errors := 0
	for _, c := range contigs {
		m.Contigs++
		if len(c.Reads) < 2 {
			continue
		}
		source := ""
		lo, hi := 1<<60, 0
		mixed := false
		for _, p := range c.Reads {
			o := store.Fragment(p.Frag).Origin
			if o == nil {
				mixed = true
				break
			}
			if source == "" {
				source = o.Source
			} else if source != o.Source {
				mixed = true
				break
			}
			if o.Start < lo {
				lo = o.Start
			}
			if o.End > hi {
				hi = o.End
			}
		}
		if mixed {
			m.Chimeric++
			continue
		}
		g, ok := genomes[source]
		if !ok {
			continue
		}
		if lo < 0 {
			lo = 0
		}
		if hi > len(g) {
			hi = len(g)
		}
		if hi <= lo {
			continue
		}
		truth := g[lo:hi]
		// Banded fit of the contig into its claimed truth span: the
		// two are near-colinear (the span comes from the contig's own
		// reads), so a band covering indel drift suffices and memory
		// stays O(len·band) even for long contigs.
		band := len(c.Bases)/20 + 64
		sc := align.DefaultScoring()
		bases := c.Bases
		r, ok := align.Fit(truth, bases, 0, band, sc)
		rcBases := seq.ReverseComplement(c.Bases)
		if r2, ok2 := align.Fit(truth, rcBases, 0, band, sc); ok2 && (!ok || r2.Score > r.Score) {
			r, ok = r2, true
			bases = rcBases
		}
		if !ok {
			continue
		}
		matches, columns := unmaskedAccuracy(truth, bases, r)
		if columns == 0 {
			continue
		}
		m.Evaluated++
		idSum += float64(matches) / float64(columns)
		errors += columns - matches
		m.TotalColumns += columns
	}
	if m.Evaluated > 0 {
		m.MeanIdentity = idSum / float64(m.Evaluated)
	}
	if m.TotalColumns > 0 {
		m.ErrorsPer10kb = float64(errors) / float64(m.TotalColumns) * 10000
	}
	return m
}

// unmaskedAccuracy walks a Fit alignment (A = truth, B = contig) and
// scores only columns whose contig base is unmasked: masked repeat
// columns are unreconstructable by design and must not count as
// consensus errors (the paper's accuracy benchmarks are finished,
// unmasked genes).
func unmaskedAccuracy(truth, contig []byte, r align.Result) (matches, columns int) {
	ti, ci := r.AStart, r.BStart
	for _, op := range r.Ops {
		switch op {
		case align.OpM:
			if seq.IsBase(contig[ci]) {
				columns++
				if contig[ci] == truth[ti] {
					matches++
				}
			}
			ti++
			ci++
		case align.OpX: // truth base missing from the contig
			columns++
			ti++
		case align.OpY: // contig base against a gap in the truth
			if seq.IsBase(contig[ci]) {
				columns++
			}
			ci++
		}
	}
	return matches, columns
}
