package validate

import (
	"math/rand"
	"testing"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func TestMatesSynthetic(t *testing.T) {
	contigs := []assembly.Contig{
		{Reads: []assembly.Placement{
			{Frag: 0, Offset: 0, Reverse: false},
			{Frag: 1, Offset: 4300, Reverse: true}, // good pair: sep 4300 ≈ 5000±1000
			{Frag: 2, Offset: 100, Reverse: false},
			{Frag: 3, Offset: 150, Reverse: true}, // bad separation
			{Frag: 4, Offset: 0, Reverse: false},
			{Frag: 5, Offset: 4800, Reverse: false}, // bad orientation
		}},
		{Reads: []assembly.Placement{{Frag: 7, Offset: 0}}},
	}
	pairs := [][3]int{
		{0, 1, 5000},
		{2, 3, 5000},
		{4, 5, 5000},
		{6, 7, 5000}, // frag 6 unplaced
		{8, 9, 5000}, // both unplaced
	}
	m := Mates(contigs, pairs, 1000)
	if m.Pairs != 3 {
		t.Errorf("Pairs = %d", m.Pairs)
	}
	if m.SameContig != 3 || m.Consistent != 1 || m.BadSeparation != 1 || m.BadOrient != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ConsistencyRate() < 0.3 || m.ConsistencyRate() > 0.34 {
		t.Errorf("rate = %g", m.ConsistencyRate())
	}
}

// TestMatesEndToEnd assembles paired reads of one region and expects
// co-placed mates to be overwhelmingly consistent.
func TestMatesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 12000})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 400
	rc.LenSD = 30
	rc.VectorProb = 0
	mates := simulate.SampleMatePairs(rng, g, 8.0, 3000, 150, rc, "m")
	frags := simulate.Flatten(mates)
	store := seq.NewStore(frags)

	ccfg := cluster.DefaultConfig()
	ccfg.Psi = 16
	ccfg.W = 8
	res := cluster.Serial(store, ccfg)

	var contigs []assembly.Contig
	for _, cl := range res.Clusters() {
		contigs = append(contigs, assembly.AssembleCluster(store, cl, assembly.DefaultConfig())...)
	}

	var pairs [][3]int
	for _, mp := range mates {
		pairs = append(pairs, [3]int{mp.Forward.ID, mp.Reverse.ID, mp.InsertLen})
	}
	m := Mates(contigs, pairs, 800)
	if m.SameContig < len(mates)/2 {
		t.Fatalf("only %d/%d mate pairs co-placed", m.SameContig, len(mates))
	}
	if m.ConsistencyRate() < 0.8 {
		t.Errorf("mate consistency %.2f (%+v)", m.ConsistencyRate(), m)
	}
}

func TestSampleMatePairsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 30000})
	rc := simulate.DefaultReadConfig()
	rc.VectorProb = 0
	mates := simulate.SampleMatePairs(rng, g, 2.0, 5000, 300, rc, "m")
	if len(mates) == 0 {
		t.Fatal("no pairs")
	}
	for _, mp := range mates {
		of, or := mp.Forward.Origin, mp.Reverse.Origin
		if of.Reverse || !or.Reverse {
			t.Fatal("mate orientations wrong")
		}
		// The reverse read's drawn length varies around MeanLen, so the
		// observed span floats around the insert by a few length SDs.
		span := or.End - of.Start
		if span < mp.InsertLen-400 || span > mp.InsertLen+400 {
			t.Fatalf("clone span %d vs insert %d", span, mp.InsertLen)
		}
	}
}
