package experiments

import (
	"strings"
	"testing"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{Scale: 60000, Ranks: []int{2, 4}, Seed: 7}
}

func TestFig5ShapeAndOutput(t *testing.T) {
	var sb strings.Builder
	opt := quickOpts()
	opt.Out = &sb
	res := Fig5(opt)
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 2 sizes × 2 rank counts", len(res.Points))
	}
	// Strong scaling within each size: more ranks, less modeled time.
	if res.Points[1].Total >= res.Points[0].Total {
		t.Errorf("no speedup small input: %v vs %v", res.Points[1].Total, res.Points[0].Total)
	}
	if res.Points[3].Total >= res.Points[2].Total {
		t.Errorf("no speedup large input")
	}
	// Larger input takes longer at equal ranks.
	if res.Points[2].Total <= res.Points[0].Total {
		t.Errorf("2× input not slower at same ranks")
	}
	for _, pt := range res.Points {
		if pt.CompSeconds <= 0 || pt.CommSeconds <= 0 {
			t.Errorf("missing comm/comp split: %+v", pt)
		}
	}
	if !strings.Contains(sb.String(), "Fig. 5") {
		t.Error("table not rendered")
	}
}

func TestFig9Shape(t *testing.T) {
	opt := quickOpts()
	res := Fig9(opt)
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Points[1].ClusterSeconds >= res.Points[0].ClusterSeconds {
		t.Errorf("no clustering speedup: %v -> %v",
			res.Points[0].ClusterSeconds, res.Points[1].ClusterSeconds)
	}
	for _, pt := range res.Points {
		if pt.MasterAvailability < 0 || pt.MasterAvailability > 1 {
			t.Errorf("availability out of range: %+v", pt)
		}
		if pt.Stats.Generated == 0 {
			t.Errorf("no pairs generated: %+v", pt)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res := Table1(quickOpts())
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Generated == 0 {
			t.Errorf("row %d: no pairs", i)
		}
		if row.Generated != 0 && row.Aligned > row.Generated {
			t.Errorf("row %d: aligned > generated", i)
		}
		// Pair counts must grow across the 2×-step rows (1×, 2×, 4×);
		// the 4×→5× step is within genome-realization noise at test
		// scale, so only require it not to collapse.
		if i > 0 && i < 3 && row.Generated <= res.Rows[i-1].Generated {
			t.Errorf("pairs should grow with input: row %d", i)
		}
	}
	if res.Rows[3].Generated < 2*res.Rows[0].Generated {
		t.Errorf("5× input did not grow pairs over 1×: %d vs %d",
			res.Rows[3].Generated, res.Rows[0].Generated)
	}
	// Savings on the largest input should be material (paper: 44–56 %).
	if last := res.Rows[len(res.Rows)-1]; last.SavingsFrac < 0.15 {
		t.Errorf("savings %.2f too small", last.SavingsFrac)
	}
}

func TestTable2Shape(t *testing.T) {
	res := Table2(quickOpts())
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	get := func(name string) Table2Row {
		for _, r := range res.Rows {
			if r.Type == name {
				return r
			}
		}
		t.Fatalf("missing row %s", name)
		return Table2Row{}
	}
	mf, wgs := get("MF"), get("WGS")
	if mf.Stats.SurvivalRate() <= wgs.Stats.SurvivalRate() {
		t.Errorf("MF survival %.2f not above WGS %.2f",
			mf.Stats.SurvivalRate(), wgs.Stats.SurvivalRate())
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(quickOpts())
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NumFragments == 0 || row.TotalSeconds <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
		if row.SavingsFrac <= 0 {
			t.Errorf("%s: no savings", row.Name)
		}
	}
}

func TestMaizeRun(t *testing.T) {
	res := Maize(quickOpts())
	if res.NumClusters == 0 {
		t.Fatal("no clusters")
	}
	if res.ContigsPerCluster < 1.0 {
		t.Errorf("contigs per cluster %.2f", res.ContigsPerCluster)
	}
	if res.FragsAfter >= res.FragsBefore {
		t.Error("preprocessing dropped nothing on a repeat-rich genome")
	}
}

func TestValidationRun(t *testing.T) {
	res := Validation(quickOpts())
	if res.Cluster.Clusters == 0 {
		t.Fatal("no clusters evaluated")
	}
	if res.Cluster.Specificity() < 0.9 {
		t.Errorf("specificity %.3f (paper: 0.987)", res.Cluster.Specificity())
	}
}

func TestMaskingAblation(t *testing.T) {
	res := Masking(quickOpts())
	if res.Unmasked.Aligned <= res.Masked.Aligned {
		t.Errorf("unmasked aligned %d not above masked %d",
			res.Unmasked.Aligned, res.Masked.Aligned)
	}
	if res.Unmasked.MaxClusterFrac <= res.Masked.MaxClusterFrac {
		t.Errorf("unmasked largest cluster %.2f not above masked %.2f",
			res.Unmasked.MaxClusterFrac, res.Masked.MaxClusterFrac)
	}
}

func TestFilterAblation(t *testing.T) {
	res := Filter(quickOpts())
	if res.LookupPairs <= res.TreePairs {
		t.Errorf("lookup pairs %d not above maximal-match pairs %d",
			res.LookupPairs, res.TreePairs)
	}
	if res.TreePairsDedup > res.TreePairs {
		t.Errorf("dedup emitted more pairs (%d) than without (%d)",
			res.TreePairsDedup, res.TreePairs)
	}
	// Decreasing-length order should not lose to arbitrary order by
	// more than noise; at paper scale it wins clearly (full runs in
	// EXPERIMENTS.md), but tiny test inputs leave little redundancy to
	// exploit.
	if float64(res.OrderedAligned) > 1.1*float64(res.ShuffledAligned)+10 {
		t.Errorf("ordered processing aligned clearly more (%d) than shuffled (%d)",
			res.OrderedAligned, res.ShuffledAligned)
	}
}

func TestCommAblation(t *testing.T) {
	res := Comm(quickOpts())
	if res.StagedPeakBytes >= res.DirectPeakBytes {
		t.Errorf("staged peak %d not below direct peak %d",
			res.StagedPeakBytes, res.DirectPeakBytes)
	}
	// Report sizes shift with goroutine scheduling, and on tiny test
	// inputs eager reports rarely stack, so the two peaks sit within
	// noise of each other; at paper scale Ssend wins clearly
	// (EXPERIMENTS.md). Only a clear inversion is a bug.
	if float64(res.SsendMasterPeak) > 1.2*float64(res.EagerMasterPeak)+64 {
		t.Errorf("Ssend master peak %d clearly above eager %d",
			res.SsendMasterPeak, res.EagerMasterPeak)
	}
}

func TestGranularityAblation(t *testing.T) {
	res := Granularity(quickOpts())
	last := len(res.Ranks) - 1
	if res.ScaledMsgs[last] > res.FixedMsgs[last] {
		t.Errorf("scaled batches sent more master messages (%d) than fixed (%d) at p=%d",
			res.ScaledMsgs[last], res.FixedMsgs[last], res.Ranks[last])
	}
}

func TestPipelineFaults(t *testing.T) {
	var sb strings.Builder
	opt := quickOpts()
	opt.Out = &sb
	opt.Quick = true
	res := PipelineFaults(opt)
	for _, a := range res.Arms {
		if !a.Completed || !a.PartitionMatch {
			t.Errorf("arm %q: completed=%v match=%v", a.Label, a.Completed, a.PartitionMatch)
		}
	}
	if res.Arms[len(res.Arms)-1].WorkersLost != 2 {
		t.Errorf("combined arm lost %d workers, want 2", res.Arms[len(res.Arms)-1].WorkersLost)
	}
	if res.Arms[len(res.Arms)-1].FramesCorrupted == 0 {
		t.Error("combined arm: corrupting wire injured no frames")
	}
	if res.ResumeBoundaries == 0 || !res.ResumeIdentical {
		t.Errorf("resume demo: %d boundaries, identical=%v", res.ResumeBoundaries, res.ResumeIdentical)
	}
	if !res.DegradedCompleted {
		t.Error("degraded-assembly run aborted instead of quarantining")
	}
	if !strings.Contains(sb.String(), "End-to-end fault model") {
		t.Error("table not rendered")
	}
}
