package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/seq"
)

// PipelineFaultArm is one end-to-end fault scenario run against the
// full clustering machine.
type PipelineFaultArm struct {
	Label           string
	Completed       bool
	PartitionMatch  bool // final partition equals the serial reference
	WorkersLost     int64
	Retransmits     int // frames resent by the reliable link (all ranks)
	FramesCorrupted int // frames the CRC32C envelope rejected (all ranks)
}

// PipelineFaultsResult holds the end-to-end fault-model demonstration.
type PipelineFaultsResult struct {
	Ranks int
	Arms  []PipelineFaultArm

	// ResumeBoundaries counts the phase boundaries at which the
	// checkpointed pipeline was "killed" and resumed; ResumeIdentical
	// reports whether every resumed run reproduced the uninterrupted
	// contigs exactly.
	ResumeBoundaries int
	ResumeIdentical  bool

	// Quarantined and DegradedCompleted come from the degraded-assembly
	// arm: a guard whose deadline no cluster can meet must quarantine
	// them all as singletons, never abort the pipeline.
	Quarantined       int
	DegradedCompleted bool
}

// PipelineFaults demonstrates the end-to-end fault model on one
// dataset: (1) a rank crash during GST construction, a worker crash
// during clustering, and a corrupting wire — separately and combined —
// must all leave the partition exactly the serial one; (2) a
// checkpointed pipeline killed at every phase boundary must resume to
// byte-identical contigs; (3) an assembly guard whose budget a cluster
// exhausts must quarantine that cluster and keep going.
func PipelineFaults(opt Options) PipelineFaultsResult {
	opt = opt.withDefaults()
	scale := opt.Scale
	if opt.Quick {
		scale = min(scale, 40000)
	}
	const p = 6
	reads := maizeReads(opt.Seed, scale)
	store := seq.NewStore(reads)
	cfg := clusterConfig()
	want := partitionLabels(cluster.Serial(store, cfg))
	res := PipelineFaultsResult{Ranks: p}

	// (1) Combined-fault clustering arms.
	pcfg := func(spec string) cluster.ParallelConfig {
		c := opt.parallelConfig(p)
		c.BatchSize = 16 // many reports per worker, so report-indexed kills land
		c.LeaseTimeout = 2 * time.Second
		if spec != "" {
			plan, err := cluster.ParseFaults(spec)
			if err != nil {
				panic(err)
			}
			c.Faults = plan
		}
		return c
	}
	arms := []struct{ label, spec string }{
		{"fault-free", ""},
		{"gst crash", fmt.Sprintf("gstcrash=2@2,seed=%d", opt.Seed)},
		{"worker crash", fmt.Sprintf("crash=4@3,seed=%d", opt.Seed)},
		{"corrupt 2%", fmt.Sprintf("corrupt=0.02,seed=%d", opt.Seed)},
		{"all combined", fmt.Sprintf("gstcrash=2@2,crash=4@3,corrupt=0.02,seed=%d", opt.Seed)},
	}
	for _, a := range arms {
		arm := PipelineFaultArm{Label: a.label}
		cres, ph, err := cluster.Parallel(store, cfg, pcfg(a.spec))
		if err == nil {
			arm.Completed = true
			arm.PartitionMatch = matchLabels(partitionLabels(cres), want)
			arm.WorkersLost = cres.Stats.WorkersLost
			arm.Retransmits = ph.GST.TotalRetransmits + ph.Cluster.TotalRetransmits
			arm.FramesCorrupted = ph.GST.TotalFramesCorrupted + ph.Cluster.TotalFramesCorrupted
		}
		res.Arms = append(res.Arms, arm)
	}

	// (2) Kill-and-resume at every phase boundary.
	ccfg := core.DefaultConfig()
	ccfg.PreprocessEnabled = false // reads are already preprocessed
	ccfg.Cluster = cfg
	ccfg.AssemblyWorkers = 4
	workdir, err := os.MkdirTemp("", "pipeline-faults-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(workdir)
	flags := fmt.Sprintf("experiment seed=%d scale=%d", opt.Seed, scale)
	ref, err := pipeline.Run(reads, pipeline.Config{Core: ccfg, Workdir: workdir, Flags: flags})
	if err != nil {
		panic(err)
	}
	res.ResumeIdentical = true
	for keep := 0; keep < len(pipeline.Phases); keep++ {
		if err := pipeline.Rollback(workdir, keep); err != nil {
			panic(err)
		}
		got, err := pipeline.Run(reads, pipeline.Config{Core: ccfg, Workdir: workdir, Resume: true, Flags: flags})
		if err != nil {
			panic(err)
		}
		res.ResumeBoundaries++
		if !contigsEqual(ref, got) {
			res.ResumeIdentical = false
		}
	}

	// (3) Degraded assembly: a deadline no cluster can meet.
	dcfg := ccfg
	dcfg.AssemblyGuard = &assembly.Guard{
		Retries: 1, Backoff: time.Millisecond, Deadline: time.Nanosecond,
		Trace: opt.Trace, Metrics: opt.Metrics,
	}
	totalClusters := 0
	dres, err := core.Run(reads, dcfg)
	if err == nil {
		res.DegradedCompleted = true
		res.Quarantined = len(dres.Quarantined())
		totalClusters = len(dres.Clusters)
	}

	tb := report.NewTable(
		fmt.Sprintf("End-to-end fault model — %d ranks, %d reads", p, store.N()),
		"scenario", "done", "partition", "lost", "retransmits", "corrupted")
	for _, a := range res.Arms {
		if !a.Completed {
			tb.AddRow(a.Label, "no", "—", "—", "—", "—")
			continue
		}
		match := "exact"
		if !a.PartitionMatch {
			match = "WRONG"
		}
		tb.AddRow(a.Label, "yes", match, report.Int(a.WorkersLost),
			report.Int(int64(a.Retransmits)), report.Int(int64(a.FramesCorrupted)))
	}
	tb.Fprint(opt.Out)

	identical := "byte-identical"
	if !res.ResumeIdentical {
		identical = "DIVERGED"
	}
	fmt.Fprintf(opt.Out, "resume: killed at %d phase boundaries, contigs %s\n",
		res.ResumeBoundaries, identical)
	degraded := "completed"
	if !res.DegradedCompleted {
		degraded = "ABORTED"
	}
	fmt.Fprintf(opt.Out, "degraded assembly: %s with %d/%d clusters quarantined as singletons\n\n",
		degraded, res.Quarantined, totalClusters)
	return res
}

// contigsEqual compares two runs' assembly output (and guard
// outcomes) field by field.
func contigsEqual(a, b *core.Result) bool {
	if len(a.Contigs) != len(b.Contigs) || len(a.AssemblyOutcomes) != len(b.AssemblyOutcomes) {
		return false
	}
	for i := range a.Contigs {
		ca, cb := a.Contigs[i], b.Contigs[i]
		if len(ca) != len(cb) {
			return false
		}
		for j := range ca {
			if string(ca[j].Bases) != string(cb[j].Bases) || ca[j].Depth != cb[j].Depth ||
				len(ca[j].Reads) != len(cb[j].Reads) {
				return false
			}
			for k := range ca[j].Reads {
				if ca[j].Reads[k] != cb[j].Reads[k] {
					return false
				}
			}
		}
	}
	for i := range a.AssemblyOutcomes {
		if a.AssemblyOutcomes[i] != b.AssemblyOutcomes[i] {
			return false
		}
	}
	return true
}
