package experiments

import (
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/report"
	"repro/internal/seq"
)

// Fig5Point is one bar of Fig. 5: parallel GST construction time for
// one (input size, processors) cell, split into computation and
// communication.
type Fig5Point struct {
	InputBases  int
	Ranks       int
	CompSeconds float64 // modeled, slowest rank
	CommSeconds float64
	Total       float64
}

// Fig5Result holds both panels (two input sizes).
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 reproduces Fig. 5: parallel GST construction run-times, broken
// into communication and computation, for two input sizes across the
// processor sweep. The paper's panels use 250 and 500 Mbp; here the
// small input is Options.Scale bases and the large input twice that.
//
// The comm/comp decomposition is read off the trace: every run is
// bracketed in a PhaseGST span per rank, and the bar heights are the
// slowest rank's span values. The numbers are identical to what
// par.Summarize reports (a rank's span starts at zero modeled time and
// ends at its final clocks), so enabling an external tracer changes
// nothing but retention.
func Fig5(opt Options) Fig5Result {
	opt = opt.withDefaults()
	var res Fig5Result
	cfg := clusterConfig()
	tr := opt.Trace
	if tr == nil {
		tr = obs.NewTracer(opt.Ranks[len(opt.Ranks)-1], 0)
	}
	for i, size := range []int{opt.Scale, 2 * opt.Scale} {
		frags := maizeReads(opt.Seed+int64(i), size)
		store := seq.NewStore(frags)
		for _, p := range opt.Ranks {
			mark := tr.Mark()
			mcfg := par.DefaultConfig(p)
			mcfg.Trace = tr
			par.Run(mcfg, func(c *par.Comm) {
				c.TraceEvent(obs.EvPhaseEnter, obs.PhaseGST, 0, 0)
				pgst.Build(c, store, pgst.Config{
					W:      cfg.W,
					MinLen: cfg.Psi,
					Seed:   opt.Seed,
				})
				c.TraceEvent(obs.EvPhaseExit, obs.PhaseGST, 0, 0)
			})
			pt := Fig5Point{InputBases: store.TotalBases(), Ranks: p}
			for _, s := range tr.SpansSince(mark) {
				if s.Phase != obs.PhaseGST {
					continue
				}
				if s.CompSeconds > pt.CompSeconds {
					pt.CompSeconds = s.CompSeconds
				}
				if s.CommSeconds > pt.CommSeconds {
					pt.CommSeconds = s.CommSeconds
				}
				if m := s.Modeled(); m > pt.Total {
					pt.Total = m
				}
			}
			res.Points = append(res.Points, pt)
		}
	}

	tb := report.NewTable(
		"Fig. 5 — parallel GST construction (modeled time, slowest rank)",
		"input (Mbp)", "procs", "comp", "comm", "total")
	for _, pt := range res.Points {
		tb.AddRow(report.Mbp(pt.InputBases), report.Int(int64(pt.Ranks)),
			report.Seconds(pt.CompSeconds), report.Seconds(pt.CommSeconds),
			report.Seconds(pt.Total))
	}
	tb.Fprint(opt.Out)
	return res
}
