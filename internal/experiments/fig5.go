package experiments

import (
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/report"
	"repro/internal/seq"
)

// Fig5Point is one bar of Fig. 5: parallel GST construction time for
// one (input size, processors) cell, split into computation and
// communication.
type Fig5Point struct {
	InputBases  int
	Ranks       int
	CompSeconds float64 // modeled, slowest rank
	CommSeconds float64
	Total       float64
}

// Fig5Result holds both panels (two input sizes).
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 reproduces Fig. 5: parallel GST construction run-times, broken
// into communication and computation, for two input sizes across the
// processor sweep. The paper's panels use 250 and 500 Mbp; here the
// small input is Options.Scale bases and the large input twice that.
func Fig5(opt Options) Fig5Result {
	opt = opt.withDefaults()
	var res Fig5Result
	cfg := clusterConfig()
	for i, size := range []int{opt.Scale, 2 * opt.Scale} {
		frags := maizeReads(opt.Seed+int64(i), size)
		store := seq.NewStore(frags)
		for _, p := range opt.Ranks {
			stats := par.Run(par.DefaultConfig(p), func(c *par.Comm) {
				pgst.Build(c, store, pgst.Config{
					W:      cfg.W,
					MinLen: cfg.Psi,
					Seed:   opt.Seed,
				})
			})
			agg := par.Summarize(stats)
			res.Points = append(res.Points, Fig5Point{
				InputBases:  store.TotalBases(),
				Ranks:       p,
				CompSeconds: agg.MaxComp,
				CommSeconds: agg.MaxComm,
				Total:       agg.MaxModeled,
			})
		}
	}

	tb := report.NewTable(
		"Fig. 5 — parallel GST construction (modeled time, slowest rank)",
		"input (Mbp)", "procs", "comp", "comm", "total")
	for _, pt := range res.Points {
		tb.AddRow(report.Mbp(pt.InputBases), report.Int(int64(pt.Ranks)),
			report.Seconds(pt.CompSeconds), report.Seconds(pt.CommSeconds),
			report.Seconds(pt.Total))
	}
	tb.Fprint(opt.Out)
	return res
}
