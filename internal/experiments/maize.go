package experiments

import (
	"math/rand"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/preprocess"
	"repro/internal/report"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/validate"
)

// MaizeResult holds the Section 8 end-to-end run statistics.
type MaizeResult struct {
	FragsBefore       int
	FragsAfter        int
	NumClusters       int
	NumSingletons     int
	MeanClusterSize   float64
	MaxClusterFrac    float64
	ContigsPerCluster float64
	ClusterStats      cluster.Stats
	Contig            validate.ContigMetrics
}

// Maize reproduces the Section 8 maize run end to end: preprocess →
// parallel clustering → per-cluster assembly, reporting the cluster
// statistics the paper gives (149,548 clusters, 244,727 singletons,
// mean 9.00, max 5.37 % of input, 1.1 contigs per cluster — all at
// 1000× our scale) and contig accuracy against the true genome.
func Maize(opt Options) MaizeResult {
	opt = opt.withDefaults()
	m := maizeData(opt.Seed, opt.Scale*2)
	all := m.All()

	trim := preprocess.DefaultTrimConfig()
	trim.Vector = simulate.DefaultReadConfig().Vector

	cfg := core.Config{
		Preprocess:        preprocess.Config{Trim: trim, Repeats: knownRepeatDB(m.Genome, 16)},
		PreprocessEnabled: true,
		Cluster:           clusterConfig(),
		Parallel:          opt.parallelConfig(opt.Ranks[len(opt.Ranks)-1] + 1),
		Assembly:          assembly.DefaultConfig(),
	}
	res, err := core.Run(all, cfg)
	if err != nil {
		panic(err) // experiment-constructed config; an error is a harness bug
	}
	sum := res.Clustering.Summarize()

	var contigs []assembly.Contig
	for _, cs := range res.Contigs {
		contigs = append(contigs, cs...)
	}
	cm := validate.Contigs(res.Store.(*seq.Store), contigs, map[string][]byte{m.Genome.Name: m.Genome.Seq})

	out := MaizeResult{
		FragsBefore:       len(all),
		FragsAfter:        res.Store.N(),
		NumClusters:       sum.NumClusters,
		NumSingletons:     sum.NumSingletons,
		MeanClusterSize:   sum.MeanSize,
		MaxClusterFrac:    sum.MaxFraction,
		ContigsPerCluster: res.ContigsPerCluster(),
		ClusterStats:      res.Clustering.Stats,
		Contig:            cm,
	}

	tb := report.NewTable("Section 8 — maize-like cluster-then-assemble run", "metric", "value")
	tb.AddRow("fragments before preprocessing", report.Int(int64(out.FragsBefore)))
	tb.AddRow("fragments after preprocessing", report.Int(int64(out.FragsAfter)))
	tb.AddRow("multi-fragment clusters", report.Int(int64(out.NumClusters)))
	tb.AddRow("singletons", report.Int(int64(out.NumSingletons)))
	tb.AddRow("mean fragments per cluster", report.F2(out.MeanClusterSize))
	tb.AddRow("largest cluster (frac of input)", report.Pct(out.MaxClusterFrac))
	tb.AddRow("contigs per cluster", report.F2(out.ContigsPerCluster))
	tb.AddRow("pairs generated", report.Int(out.ClusterStats.Generated))
	tb.AddRow("alignment savings", report.Pct(out.ClusterStats.SavingsFraction()))
	tb.AddRow("contig errors per 10 kb", report.F1(out.Contig.ErrorsPer10kb))
	tb.AddRow("chimeric contigs", report.Int(int64(out.Contig.Chimeric)))
	tb.Fprint(opt.Out)
	return out
}

// ValidationResult holds the Section 9.1 validation metrics.
type ValidationResult struct {
	Cluster validate.ClusterMetrics
	Contig  validate.ContigMetrics
}

// Validation reproduces the Section 9.1 biological validation on the
// Drosophila-like WGS workload: the fraction of clusters whose reads
// map to a single benchmark region (paper: 98.7 %) plus false-split
// and consensus-accuracy checks the ground-truth oracle makes
// possible.
func Validation(opt Options) ValidationResult {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 300))
	genomeLen := int(float64(opt.Scale) / 2.2)
	g, reads := simulate.DrosophilaLike(rng, genomeLen)
	masked := maskStatistically(rng, reads, genomeLen)
	store := seq.NewStore(masked)

	res := cluster.Serial(store, clusterConfig())
	groups := res.UF.Groups()
	labels := validate.ClusterOf(store.N(), groups)
	cm := validate.Clusters(store, res.Clusters(), labels, 2*clusterConfig().Criteria.MinOverlap)

	contigSets := assembly.AssembleAll(store, res.Clusters(), assembly.DefaultConfig(), 2)
	var contigs []assembly.Contig
	for _, cs := range contigSets {
		contigs = append(contigs, cs...)
	}
	am := validate.Contigs(store, contigs, map[string][]byte{g.Name: g.Seq})

	out := ValidationResult{Cluster: cm, Contig: am}
	tb := report.NewTable("Section 9.1 — ground-truth validation (Drosophila-like WGS)", "metric", "value")
	tb.AddRow("clusters evaluated", report.Int(int64(cm.Clusters)))
	tb.AddRow("single-source clusters (specificity)", report.Pct(cm.Specificity()))
	tb.AddRow("region-contiguous clusters", report.Int(int64(cm.RegionPure)))
	tb.AddRow("false splits / checked pairs", report.Int(int64(cm.SplitViolations))+" / "+report.Int(int64(cm.OverlapPairsChecked)))
	tb.AddRow("contigs evaluated", report.Int(int64(am.Evaluated)))
	tb.AddRow("mean contig identity", report.Pct(am.MeanIdentity))
	tb.AddRow("contig errors per 10 kb", report.F1(am.ErrorsPer10kb))
	tb.Fprint(opt.Out)
	return out
}
