package experiments

import (
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/seq"
)

// Fig9Point is one point of Fig. 9 plus the Section 7.2 diagnostics.
type Fig9Point struct {
	InputBases         int
	Ranks              int
	ClusterSeconds     float64 // modeled clustering time excluding GST
	GSTSeconds         float64
	MeanWorkerIdle     float64 // Section 7.2: grows with p, shrinks with N
	MasterAvailability float64 // Section 7.2: shrinks with p
	Stats              cluster.Stats
}

// Fig9Result holds the sweep for both input sizes.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 reproduces Fig. 9: total parallel clustering time (excluding
// GST construction) across the processor sweep for two input sizes,
// along with the idle-time and master-availability observations of
// Section 7.2.
func Fig9(opt Options) Fig9Result {
	opt = opt.withDefaults()
	var res Fig9Result
	cfg := clusterConfig()
	for i, size := range []int{opt.Scale, 2 * opt.Scale} {
		frags := maizeReads(opt.Seed+int64(i), size)
		store := seq.NewStore(frags)
		for _, p := range opt.Ranks {
			pcfg := opt.parallelConfig(p + 1) // master + p workers
			cres, ph := mustParallel(store, cfg, pcfg)
			// Worker idle: mean modeled idle over worker ranks only.
			res.Points = append(res.Points, Fig9Point{
				InputBases:         store.TotalBases(),
				Ranks:              p,
				ClusterSeconds:     ph.Cluster.MaxModeled,
				GSTSeconds:         ph.GST.MaxModeled,
				MeanWorkerIdle:     ph.Cluster.MeanIdle,
				MasterAvailability: ph.MasterAvailability,
				Stats:              cres.Stats,
			})
		}
	}

	tb := report.NewTable(
		"Fig. 9 — parallel clustering time excluding GST construction (modeled)",
		"input (Mbp)", "procs", "cluster", "gst", "idle", "master avail")
	for _, pt := range res.Points {
		tb.AddRow(report.Mbp(pt.InputBases), report.Int(int64(pt.Ranks)),
			report.Seconds(pt.ClusterSeconds), report.Seconds(pt.GSTSeconds),
			report.Pct(pt.MeanWorkerIdle), report.Pct(pt.MasterAvailability))
	}
	tb.Fprint(opt.Out)
	return res
}
