package experiments

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/lookup"
	"repro/internal/pairgen"
	"repro/internal/par"
	"repro/internal/pgst"
	"repro/internal/report"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/unionfind"
)

// MaskingResult compares clustering with and without repeat masking
// (the Section 9.1 ablation: unmasked Drosophila took >24 h instead of
// 3.1 h and put ~50 % of fragments into one cluster).
type MaskingResult struct {
	Masked   MaskingRun
	Unmasked MaskingRun
}

// MaskingRun is one arm of the masking ablation.
type MaskingRun struct {
	Aligned        int64
	Generated      int64
	MaxClusterFrac float64
	ModeledSeconds float64
}

// Masking runs the repeat-masking ablation on a WGS workload.
func Masking(opt Options) MaskingResult {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 400))
	// A genome with guaranteed high-copy repeats at every scale: a
	// young family (near-identical copies merge everything they touch
	// into one cluster) and an old, diverged family (copy-pair
	// overlaps hover at the identity cutoff, so unmasked they burn
	// alignments without merging — the paper's 3.1 h → >24 h blowup).
	genomeLen := opt.Scale / 4
	copiesOf := func(share float64, length int) int {
		c := share * float64(genomeLen) / float64(length)
		if c < 15 {
			c = 15
		}
		return int(c)
	}
	g := simulate.NewGenome(rng, "abl", simulate.GenomeConfig{
		Length: genomeLen,
		Repeats: []simulate.RepeatFamily{
			{Length: 800, Copies: copiesOf(0.15, 800), Divergence: 0.01},
			{Length: 600, Copies: copiesOf(0.15, 600), Divergence: 0.07},
		},
	})
	reads := simulate.SampleWGS(rng, g, 8.0, simulate.DefaultReadConfig(), "abl")

	db := knownRepeatDB(g, 16)
	cfg := clusterConfig()

	run := func(mask bool) MaskingRun {
		var frags []*seq.Fragment
		for _, f := range reads {
			cp := &seq.Fragment{Name: f.Name, Bases: append([]byte(nil), f.Bases...), Origin: f.Origin}
			if mask {
				db.Mask(cp.Bases)
			}
			frags = append(frags, cp)
		}
		store := seq.NewStore(frags)
		res, ph := mustParallel(store, cfg, opt.parallelConfig(9))
		sum := res.Summarize()
		return MaskingRun{
			Aligned:        res.Stats.Aligned,
			Generated:      res.Stats.Generated,
			MaxClusterFrac: sum.MaxFraction,
			ModeledSeconds: ph.GST.MaxModeled + ph.Cluster.MaxModeled,
		}
	}
	out := MaskingResult{Masked: run(true), Unmasked: run(false)}

	tb := report.NewTable("Section 9.1 ablation — repeat masking", "arm", "generated", "aligned", "largest cluster", "modeled time")
	tb.AddRow("masked", report.Int(out.Masked.Generated), report.Int(out.Masked.Aligned),
		report.Pct(out.Masked.MaxClusterFrac), report.Seconds(out.Masked.ModeledSeconds))
	tb.AddRow("unmasked", report.Int(out.Unmasked.Generated), report.Int(out.Unmasked.Aligned),
		report.Pct(out.Unmasked.MaxClusterFrac), report.Seconds(out.Unmasked.ModeledSeconds))
	tb.Fprint(opt.Out)
	return out
}

// FilterResult compares the suffix-tree maximal-match filter with the
// conventional w-mer lookup-table filter (Section 2 vs Section 5), and
// the duplicate-elimination variant.
type FilterResult struct {
	TreePairs       int64 // maximal-match pairs (no dedup)
	TreePairsDedup  int64 // with duplicate elimination
	LookupPairs     int64 // fixed-length w-mer pairs
	OrderedAligned  int64 // alignments with decreasing-length order
	ShuffledAligned int64 // alignments with arbitrary order
	OrderedSavings  float64
	ShuffledSavings float64
}

// Filter runs the filter and ordering ablations on one maize-like
// input: (a) the lookup table generates a pair once per shared w-mer —
// l−w+1 times for a length-l match — where the tree generates it once
// per maximal match; (b) processing pairs in decreasing match order
// saves more alignments than arbitrary order.
func Filter(opt Options) FilterResult {
	opt = opt.withDefaults()
	frags := maizeReads(opt.Seed+500, opt.Scale/2)
	store := seq.NewStore(frags)
	cfg := clusterConfig()
	var out FilterResult

	tree := cluster.BuildSerialTree(store, cfg)
	var pairs []pairgen.Pair
	st := pairgen.Generate(tree, pairgen.Config{Psi: cfg.Psi, NumFragments: store.N()},
		func(p pairgen.Pair) bool {
			pairs = append(pairs, p)
			return true
		})
	out.TreePairs = st.Emitted

	stD := pairgen.Generate(tree, pairgen.Config{
		Psi: cfg.Psi, NumFragments: store.N(), DuplicateElimination: true,
	}, func(pairgen.Pair) bool { return true })
	out.TreePairsDedup = stD.Emitted

	acc := func(sid int32) []byte { return store.Seq(int(sid)) }
	stL := lookup.Generate(acc, store.NumSeqs(), lookup.Config{W: cfg.Psi, NumFragments: store.N()},
		func(pairgen.Pair) bool { return true })
	out.LookupPairs = stL.Emitted

	// Ordering ablation: same pair set, ordered vs shuffled processing.
	process := func(ps []pairgen.Pair) int64 {
		uf := unionfind.New(store.N())
		var aligned int64
		n := int32(store.N())
		for _, p := range ps {
			fa, fb := int(p.ASid%n), int(p.BSid%n)
			if uf.Same(fa, fb) {
				continue
			}
			aligned++
			if ok, _ := cluster.AlignPair(store, p, cfg); ok {
				uf.Union(fa, fb)
			}
		}
		return aligned
	}
	out.OrderedAligned = process(pairs)
	shuffled := append([]pairgen.Pair(nil), pairs...)
	rng := rand.New(rand.NewSource(opt.Seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	out.ShuffledAligned = process(shuffled)
	if n := int64(len(pairs)); n > 0 {
		out.OrderedSavings = float64(n-out.OrderedAligned) / float64(n)
		out.ShuffledSavings = float64(n-out.ShuffledAligned) / float64(n)
	}

	tb := report.NewTable("Ablation — pair filters and processing order", "metric", "value")
	tb.AddRow("maximal-match pairs (suffix tree)", report.Int(out.TreePairs))
	tb.AddRow("  with duplicate elimination", report.Int(out.TreePairsDedup))
	tb.AddRow("fixed w-mer pairs (lookup table)", report.Int(out.LookupPairs))
	tb.AddRow("aligned, decreasing-length order", report.Int(out.OrderedAligned))
	tb.AddRow("aligned, arbitrary order", report.Int(out.ShuffledAligned))
	tb.AddRow("savings, ordered", report.Pct(out.OrderedSavings))
	tb.AddRow("savings, shuffled", report.Pct(out.ShuffledSavings))
	tb.Fprint(opt.Out)
	return out
}

// CommResult compares communication strategies: the customized staged
// Alltoallv vs the direct one (peak buffer bytes during GST
// construction, Section 6), and synchronous vs eager worker sends
// (master-side peak buffer, Section 7.2's MPI_Ssend discussion).
type CommResult struct {
	DirectPeakBytes int
	StagedPeakBytes int
	EagerMasterPeak int
	SsendMasterPeak int
}

// Comm runs the communication ablations.
func Comm(opt Options) CommResult {
	opt = opt.withDefaults()
	frags := maizeReads(opt.Seed+600, opt.Scale/2)
	store := seq.NewStore(frags)
	cfg := clusterConfig()
	p := opt.Ranks[len(opt.Ranks)-1]
	var out CommResult

	peak := func(staged bool) int {
		stats := par.Run(opt.machineConfig(p), func(c *par.Comm) {
			pgst.Build(c, store, pgst.Config{
				W: cfg.W, MinLen: cfg.Psi, Staged: staged, Seed: opt.Seed,
			})
		})
		return par.Summarize(stats).PeakBufBytes
	}
	out.DirectPeakBytes = peak(false)
	out.StagedPeakBytes = peak(true)

	// The master's mailbox high-water mark is what Ssend protects
	// against overflowing (Section 7.2's MPI_Ssend discussion).
	masterPeak := func(ssend bool) int {
		pcfg := opt.parallelConfig(p + 1)
		pcfg.UseSsend = ssend
		_, ph := mustParallel(store, cfg, pcfg)
		return ph.MasterPeakBufBytes
	}
	out.EagerMasterPeak = masterPeak(false)
	out.SsendMasterPeak = masterPeak(true)

	tb := report.NewTable("Ablation — communication strategies", "metric", "bytes")
	tb.AddRow("Alltoallv direct, peak buffer", report.Int(int64(out.DirectPeakBytes)))
	tb.AddRow("Alltoallv staged (customized), peak buffer", report.Int(int64(out.StagedPeakBytes)))
	tb.AddRow("eager worker sends, master peak buffer", report.Int(int64(out.EagerMasterPeak)))
	tb.AddRow("Ssend worker sends, master peak buffer", report.Int(int64(out.SsendMasterPeak)))
	tb.Fprint(opt.Out)
	return out
}

// GranularityResult holds the Section 7.2 granularity-scaling study:
// does growing the dispatch batch with the machine keep the master's
// message frequency (and hence its availability) flat?
type GranularityResult struct {
	Ranks       []int
	FixedMsgs   []int
	ScaledMsgs  []int
	FixedAvail  []float64
	ScaledAvail []float64
}

// Granularity compares fixed dispatch granularity against the paper's
// proposed batch-size scaling across the rank sweep.
func Granularity(opt Options) GranularityResult {
	opt = opt.withDefaults()
	frags := maizeReads(opt.Seed+700, opt.Scale/2)
	store := seq.NewStore(frags)
	cfg := clusterConfig()
	var out GranularityResult
	for _, p := range opt.Ranks {
		out.Ranks = append(out.Ranks, p)
		for _, scaled := range []bool{false, true} {
			pcfg := opt.parallelConfig(p + 1)
			pcfg.ScaleBatchWithWorkers = scaled
			_, ph := mustParallel(store, cfg, pcfg)
			if scaled {
				out.ScaledMsgs = append(out.ScaledMsgs, ph.MasterMsgsRecv)
				out.ScaledAvail = append(out.ScaledAvail, ph.MasterAvailability)
			} else {
				out.FixedMsgs = append(out.FixedMsgs, ph.MasterMsgsRecv)
				out.FixedAvail = append(out.FixedAvail, ph.MasterAvailability)
			}
		}
	}
	tb := report.NewTable(
		"Section 7.2 — dispatch granularity vs master load",
		"procs", "msgs (fixed b)", "msgs (scaled b)", "avail (fixed)", "avail (scaled)")
	for i, p := range out.Ranks {
		tb.AddRow(report.Int(int64(p)), report.Int(int64(out.FixedMsgs[i])),
			report.Int(int64(out.ScaledMsgs[i])),
			report.Pct(out.FixedAvail[i]), report.Pct(out.ScaledAvail[i]))
	}
	tb.Fprint(opt.Out)
	return out
}
