package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/seq"
)

// FaultPoint is one arm of the fault sweep.
type FaultPoint struct {
	Label          string
	Crashes        int
	DropProb       float64
	Completed      bool // false iff every worker was lost
	PartitionMatch bool // final partition equals the serial reference
	WorkersLost    int64
	Requeued       int64
	MsgsDropped    int     // eager sends the fault plan discarded (all ranks)
	ClusterSeconds float64 // modeled clustering time (max over ranks)
	OverheadFrac   float64 // (faulty − baseline) / baseline, modeled
}

// FaultSweepResult holds the fault-tolerance sweep.
type FaultSweepResult struct {
	Ranks           int
	BaselineSeconds float64
	Points          []FaultPoint
}

// FaultSweep measures what fail-stop worker crashes and a lossy
// message layer cost the clustering phase. Every arm must reproduce
// the serial partition exactly — fault tolerance that changes the
// answer is not tolerance — so each row reports the partition check
// alongside lost workers, requeued alignments, and the modeled-time
// overhead versus a fault-free baseline on the same machine. The
// whole sweep runs the eager (UseSsend=false) protocol so the crash
// and drop arms share one baseline.
func FaultSweep(opt Options) FaultSweepResult {
	opt = opt.withDefaults()
	p := 9 // master + 8 workers
	scale := opt.Scale
	crashArms := [][]par.Crash{
		{cluster.CrashWorkerAtReport(2, 3)},
		{cluster.CrashWorkerAtReport(2, 3), cluster.CrashWorkerAtReport(5, 6)},
		{cluster.CrashWorkerAtReport(1, 2), cluster.CrashWorkerAtReport(3, 4),
			cluster.CrashWorkerAtReport(5, 6), cluster.CrashWorkerAtReport(7, 8)},
	}
	drops := []float64{0.002, 0.01}
	if opt.Quick {
		p = 5 // master + 4 workers
		scale = min(scale, 40000)
		crashArms = [][]par.Crash{
			{cluster.CrashWorkerAtReport(2, 3)},
			{cluster.CrashWorkerAtReport(2, 3), cluster.CrashWorkerAtReport(4, 6)},
		}
		drops = []float64{0.005}
	}

	store := seq.NewStore(maizeReads(opt.Seed, scale))
	cfg := clusterConfig()
	want := partitionLabels(cluster.Serial(store, cfg))

	pcfg := func() cluster.ParallelConfig {
		c := opt.parallelConfig(p)
		c.UseSsend = false
		c.LeaseTimeout = 250 * time.Millisecond
		return c
	}

	base, basePh := mustParallel(store, cfg, pcfg())
	res := FaultSweepResult{Ranks: p, BaselineSeconds: basePh.Cluster.MaxModeled}
	if !matchLabels(partitionLabels(base), want) {
		panic("experiments: fault-free baseline does not match serial clustering")
	}

	runArm := func(label string, crashes int, dropProb float64, c cluster.ParallelConfig) {
		pt := FaultPoint{Label: label, Crashes: crashes, DropProb: dropProb}
		cres, ph, err := cluster.Parallel(store, cfg, c)
		if err == nil {
			pt.Completed = true
			pt.PartitionMatch = matchLabels(partitionLabels(cres), want)
			pt.WorkersLost = cres.Stats.WorkersLost
			pt.Requeued = cres.Stats.Requeued
			pt.MsgsDropped = ph.GST.TotalMsgsDropped + ph.Cluster.TotalMsgsDropped
			pt.ClusterSeconds = ph.Cluster.MaxModeled
			pt.OverheadFrac = (pt.ClusterSeconds - res.BaselineSeconds) / res.BaselineSeconds
		}
		res.Points = append(res.Points, pt)
	}

	for _, crashes := range crashArms {
		c := pcfg()
		c.Faults = &par.FaultPlan{Seed: opt.Seed, Crashes: crashes}
		runArm(fmt.Sprintf("crash ×%d", len(crashes)), len(crashes), 0, c)
	}
	for _, q := range drops {
		c := pcfg()
		c.Faults = &par.FaultPlan{Seed: opt.Seed, DropProb: q}
		runArm(fmt.Sprintf("drop %.1f%%", 100*q), 0, q, c)
	}

	tb := report.NewTable(
		fmt.Sprintf("Fault sweep — %d ranks, modeled baseline %s", p,
			report.Seconds(res.BaselineSeconds)),
		"faults", "done", "partition", "lost", "requeued", "dropped", "cluster", "overhead")
	for _, pt := range res.Points {
		if !pt.Completed {
			tb.AddRow(pt.Label, "no", "—", "—", "—", "—", "—", "—")
			continue
		}
		match := "exact"
		if !pt.PartitionMatch {
			match = "WRONG"
		}
		tb.AddRow(pt.Label, "yes", match, report.Int(pt.WorkersLost),
			report.Int(pt.Requeued), report.Int(int64(pt.MsgsDropped)),
			report.Seconds(pt.ClusterSeconds), report.Pct(pt.OverheadFrac))
	}
	tb.Fprint(opt.Out)
	return res
}

// partitionLabels and matchLabels forward to the canonical forms in
// internal/cluster, shared with the simulation harness.
func partitionLabels(res *cluster.Result) []int { return cluster.PartitionLabels(res) }

func matchLabels(got, want []int) bool { return cluster.SamePartition(got, want) }
