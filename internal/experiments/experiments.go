// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 6.1, 7.2, 8, 9) on scaled-down
// synthetic workloads, plus the design-choice ablations DESIGN.md
// calls out. Each experiment returns structured results and renders
// the paper's corresponding table or data series; cmd/experiments and
// the root bench harness both drive these entry points.
//
// Scaling: the paper's runs use 0.25–1.25 Gbp on a 1024-node
// BlueGene/L. Here genome and read volumes shrink ~1000× and rank
// counts ~32×, while the dimensionless knobs (repeat fraction, read
// length, error rate, coverage, ψ relative to read length) stay at
// paper values, so ratio-shaped results — savings percentages,
// scaling slopes, cluster size distributions — are comparable.
package experiments

import (
	"io"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/preprocess"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the base read volume in bases for the "small" input
	// (the paper's 250 Mbp point). Default 250,000.
	Scale int
	// Ranks is the processor sweep. Default {4, 8, 16, 32}.
	Ranks []int
	// Seed drives all synthetic data.
	Seed int64
	// Out receives rendered tables; nil discards them.
	Out io.Writer
	// Quick shrinks sweeps to CI-sized runs (used by FaultSweep).
	Quick bool
	// Trace, when non-nil, records every machine run of the experiment
	// into this tracer (cmd/experiments -trace-out wires it and writes
	// one Chrome trace JSON per experiment).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives the clustering metrics of every
	// parallel run (served live by cmd/experiments -obs-addr).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 250000
	}
	if len(o.Ranks) == 0 {
		o.Ranks = []int{4, 8, 16, 32}
	}
	if o.Seed == 0 {
		o.Seed = 20060425 // IPDPS 2006
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// maizeData synthesizes a maize-like dataset whose total read length
// is close to targetBases.
func maizeData(seed int64, targetBases int) *simulate.MaizeData {
	rng := rand.New(rand.NewSource(seed))
	genomeLen := int(float64(targetBases) / 1.1)
	return simulate.MaizeLike(rng, genomeLen)
}

// maizeReads synthesizes a preprocessed maize-like read set whose
// total length is close to targetBases: trimmed, vector-screened, and
// masked against the *partial* known-repeat database (the long,
// characterized families only). The medium-sized families leak
// through, exactly as they did through the paper's screens ("even the
// small fraction of repetitive sequences that survive the initial
// screening is substantial", Section 2) — which is what drives
// Table 1's near-quadratic pair growth and its low accepted/aligned
// ratio.
func maizeReads(seed int64, targetBases int) []*seq.Fragment {
	m := maizeData(seed, targetBases)
	trim := preprocess.DefaultTrimConfig()
	trim.Vector = simulate.DefaultReadConfig().Vector
	out, _ := preprocess.Run(m.All(), preprocess.Config{
		Trim:    trim,
		Repeats: knownRepeatDBFamilies(m.Genome, 16, map[int]bool{0: true, 1: true}),
	})
	return out
}

// maskStatistically detects repeats from a fixed-coverage read sample
// and masks all reads, dropping those with too little usable
// sequence — the Section 9.1 procedure. genomeLen calibrates the
// sample coverage.
func maskStatistically(rng *rand.Rand, frags []*seq.Fragment, genomeLen int) []*seq.Fragment {
	return maskAndFilter(rng, frags, genomeLen, 16, 4, 100)
}

// mustParallel runs the parallel clustering engine with a
// configuration the experiment constructed itself; an error here is a
// harness bug, not an input condition, so it panics.
func mustParallel(store seq.Seqs, cfg cluster.Config, pcfg cluster.ParallelConfig) (*cluster.Result, cluster.PhaseStats) {
	res, ph, err := cluster.Parallel(store, cfg, pcfg)
	if err != nil {
		panic(err)
	}
	return res, ph
}

// machineConfig returns a default p-rank machine with the experiment's
// tracer installed.
func (o Options) machineConfig(p int) par.Config {
	cfg := par.DefaultConfig(p)
	cfg.Trace = o.Trace
	return cfg
}

// parallelConfig returns a default p-rank parallel clustering
// configuration with the experiment's tracer and metrics installed.
func (o Options) parallelConfig(p int) cluster.ParallelConfig {
	pcfg := cluster.DefaultParallelConfig(p)
	pcfg.Trace = o.Trace
	pcfg.Metrics = o.Metrics
	return pcfg
}

// clusterConfig returns the clustering parameters used throughout the
// experiments: ψ = 20 as a paper-scale maximal-match cutoff for
// ~700 bp reads, bucket prefix w = 10.
func clusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Psi = 20
	cfg.W = 10
	return cfg
}
