package experiments

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/preprocess"
	"repro/internal/report"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// Table1Row is one input-size column of Table 1.
type Table1Row struct {
	InputBases    int
	NumFragments  int
	Generated     int64
	Aligned       int64
	Accepted      int64
	SavingsFrac   float64 // generated but never aligned
	AcceptedOfAln float64 // accepted / aligned (paper: <4 % on maize)
}

// Table1Result holds the size sweep.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: promising pairs generated, aligned, and
// accepted as a function of input size on the maize-like gene-enriched
// mixture. The paper sweeps 250→1252 Mbp; here Options.Scale plays the
// 250 Mbp point and the sweep scales by the same factors
// (1×, 2×, 4×, 5×).
func Table1(opt Options) Table1Result {
	opt = opt.withDefaults()
	var res Table1Result
	cfg := clusterConfig()
	for _, factor := range []int{1, 2, 4, 5} {
		frags := maizeReads(opt.Seed, opt.Scale*factor)
		store := seq.NewStore(frags)
		r := cluster.Serial(store, cfg)
		res.Rows = append(res.Rows, Table1Row{
			InputBases:    store.TotalBases(),
			NumFragments:  store.N(),
			Generated:     r.Stats.Generated,
			Aligned:       r.Stats.Aligned,
			Accepted:      r.Stats.Accepted,
			SavingsFrac:   r.Stats.SavingsFraction(),
			AcceptedOfAln: ratio(r.Stats.Accepted, r.Stats.Aligned),
		})
	}

	tb := report.NewTable(
		"Table 1 — promising pairs generated, aligned, accepted vs input size",
		"input (Mbp)", "fragments", "generated", "aligned", "accepted", "savings", "acc/aln")
	for _, row := range res.Rows {
		tb.AddRow(report.Mbp(row.InputBases), report.Int(int64(row.NumFragments)),
			report.Int(row.Generated), report.Int(row.Aligned), report.Int(row.Accepted),
			report.Pct(row.SavingsFrac), report.Pct(row.AcceptedOfAln))
	}
	tb.Fprint(opt.Out)
	return res
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table2Row is one fragment-type row of Table 2.
type Table2Row struct {
	Type  string
	Stats preprocess.Stats
}

// Table2Result holds the four fragment types.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces Table 2: maize fragments by type before and after
// preprocessing (trimming, vector screening, repeat masking). The
// paper's signature: shotgun-derived fragments (WGS, BAC) lose most of
// their number to repeat masking while gene-enriched fragments (MF,
// HC) mostly survive.
func Table2(opt Options) Table2Result {
	opt = opt.withDefaults()
	m := maizeData(opt.Seed, opt.Scale*4)

	// Known-repeat database, the paper's curated maize repeat screen.
	trim := preprocess.DefaultTrimConfig()
	trim.Vector = simulate.DefaultReadConfig().Vector
	cfg := preprocess.Config{Trim: trim, Repeats: knownRepeatDB(m.Genome, 16)}

	var res Table2Result
	for _, tc := range []struct {
		name  string
		frags []*seq.Fragment
	}{
		{"MF", m.MF}, {"HC", m.HC}, {"BAC", m.BAC}, {"WGS", m.WGS},
	} {
		_, st := preprocess.Run(tc.frags, cfg)
		res.Rows = append(res.Rows, Table2Row{Type: tc.name, Stats: st})
	}

	tb := report.NewTable(
		"Table 2 — maize fragment types before/after preprocessing",
		"type", "frags before", "Mbp before", "frags after", "Mbp after", "survival")
	for _, row := range res.Rows {
		tb.AddRow(row.Type,
			report.Int(int64(row.Stats.FragsBefore)), report.Mbp(row.Stats.BasesBefore),
			report.Int(int64(row.Stats.FragsAfter)), report.Mbp(row.Stats.BasesAfter),
			report.Pct(row.Stats.SurvivalRate()))
	}
	tb.Fprint(opt.Out)
	return res
}

// Table3Row is one workload row of Table 3.
type Table3Row struct {
	Name         string
	NumFragments int
	TotalBases   int
	GSTSeconds   float64
	TotalSeconds float64
	Accepted     int64
	Rejected     int64
	NotAligned   int64
	SavingsFrac  float64
}

// Table3Result holds both workloads.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 reproduces Table 3: clustering performance on a uniformly
// shotgunned genome (Drosophila pseudoobscura, 8.8×) and an
// environmental sample (Sargasso Sea). Savings were 65 % and 57 % in
// the paper; both should exceed the maize mixture's 44 %.
func Table3(opt Options) Table3Result {
	opt = opt.withDefaults()
	cfg := clusterConfig()
	ranks := opt.Ranks[len(opt.Ranks)-1] + 1

	var res Table3Result
	run := func(name string, frags []*seq.Fragment) {
		store := seq.NewStore(frags)
		r, ph := mustParallel(store, cfg, opt.parallelConfig(ranks))
		res.Rows = append(res.Rows, Table3Row{
			Name:         name,
			NumFragments: store.N(),
			TotalBases:   store.TotalBases(),
			GSTSeconds:   ph.GST.MaxModeled,
			TotalSeconds: ph.GST.MaxModeled + ph.Cluster.MaxModeled,
			Accepted:     r.Stats.Accepted,
			Rejected:     r.Stats.Aligned - r.Stats.Accepted,
			NotAligned:   r.Stats.Skipped,
			SavingsFrac:  r.Stats.SavingsFraction(),
		})
	}

	// Drosophila-like: uniform 8.8× WGS, statistically masked.
	rngD := rand.New(rand.NewSource(opt.Seed + 100))
	genomeLen := int(float64(opt.Scale) / 2.2) // 8.8× coverage → reads ≈ 4 × scale
	_, reads := simulate.DrosophilaLike(rngD, genomeLen)
	run("Drosophila-like WGS", maskStatistically(rngD, reads, genomeLen))

	// Sargasso-like: abundance-skewed community at ≈1.2× total
	// coverage (the Sargasso sample is shallow but not sparse).
	rngS := rand.New(rand.NewSource(opt.Seed + 200))
	nSpecies := 8 + opt.Scale/50000
	rc := simulate.DefaultReadConfig()
	communityBases := nSpecies * 37500 // mean species length 37.5 kb
	_, envReads := simulate.SargassoLike(rngS, nSpecies, communityBases*12/10/rc.MeanLen)
	run("Sargasso-like env", maskStatistically(rngS, envReads, communityBases))

	tb := report.NewTable(
		"Table 3 — WGS and environmental clustering (modeled time, savings)",
		"workload", "frags", "Mbp", "gst", "total", "accepted", "rejected", "not aligned", "savings")
	for _, row := range res.Rows {
		tb.AddRow(row.Name, report.Int(int64(row.NumFragments)), report.Mbp(row.TotalBases),
			report.Seconds(row.GSTSeconds), report.Seconds(row.TotalSeconds),
			report.Int(row.Accepted), report.Int(row.Rejected), report.Int(row.NotAligned),
			report.Pct(row.SavingsFrac))
	}
	tb.Fprint(opt.Out)
	return res
}
