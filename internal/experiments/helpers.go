package experiments

import (
	"math/rand"

	"repro/internal/preprocess"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// maskAndFilter is the Section 9.1 preprocessing: detect repeats by
// statistical over-representation in a fixed-coverage read sample
// (≈0.3× of genomeLen), then trim, screen vector, mask, and drop
// fragments with too little usable sequence.
func maskAndFilter(rng *rand.Rand, frags []*seq.Fragment, genomeLen, k, minCount, minUnmasked int) []*seq.Fragment {
	db := statRepeatDB(rng, frags, genomeLen, k, minCount)
	trim := preprocess.DefaultTrimConfig()
	trim.Vector = simulate.DefaultReadConfig().Vector
	out, _ := preprocess.Run(frags, preprocess.Config{
		Trim:        trim,
		Repeats:     db,
		MinUnmasked: minUnmasked,
	})
	return out
}

// statRepeatDB builds the statistical repeat database from a ≈0.3×
// coverage sample of the reads (the paper's Section 9.1 used 0.1× of
// a 9× run; the higher sample coverage compensates for our much
// smaller genomes).
func statRepeatDB(rng *rand.Rand, frags []*seq.Fragment, genomeLen, k, minCount int) *preprocess.RepeatDB {
	sample := preprocess.SampleToCoverage(rng, frags, genomeLen*3/10)
	return preprocess.DetectRepeats(sample, k, minCount)
}

// knownRepeatDB builds the full curated-repeat-database analogue from
// a genome's planted repeat copies (the paper's maize screening uses a
// database of known maize repeats, Section 8). Extracting the realized
// genome spans — rather than consensus — makes this the "perfect
// screen" used by the Section 8 and Table 2 runs.
func knownRepeatDB(g *simulate.Genome, k int) *preprocess.RepeatDB {
	var seqs [][]byte
	for _, r := range g.Repeats {
		seqs = append(seqs, g.Seq[r.Span.Start:r.Span.End])
	}
	return preprocess.NewRepeatDBFromSeqs(seqs, k)
}

// knownRepeatDBFamilies builds the database from the consensus
// sequences of a subset of repeat families (nil = all). Consensus
// sequences are what a curated database records — genome spans would
// accidentally include the younger families nested inside old
// elements. Restricting the set models the paper's reality that
// medium-sized elements survived the screens and drove the
// near-quadratic pair growth of Table 1.
func knownRepeatDBFamilies(g *simulate.Genome, k int, include map[int]bool) *preprocess.RepeatDB {
	var seqs [][]byte
	for fi, cons := range g.FamilySeqs {
		if cons != nil && (include == nil || include[fi]) {
			seqs = append(seqs, cons)
		}
	}
	return preprocess.NewRepeatDBFromSeqs(seqs, k)
}

func totalBases(frags []*seq.Fragment) int {
	n := 0
	for _, f := range frags {
		n += len(f.Bases)
	}
	return n
}
