package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestTable1Golden pins the Table 1 report: the serial clustering
// counts over the synthetic maize-like inputs are fully deterministic
// for a fixed seed, so the rendered table must be byte-identical to
// testdata/table1.golden. (The parallel tables are excluded: their
// modeled times depend on host scheduling.) Regenerate with `go test
// -run Table1Golden -update ./internal/experiments`.
func TestTable1Golden(t *testing.T) {
	var buf bytes.Buffer
	Table1(Options{Scale: 20000, Seed: 20060425, Out: &buf})

	golden := filepath.Join("testdata", "table1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Table 1 drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
