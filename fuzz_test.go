package repro

import (
	"strings"
	"testing"
)

// FuzzReadFASTA: the facade parser must never panic on arbitrary
// input, and every fragment it returns must be usable — canonical
// bases only, so downstream k-mer code cannot choke on it.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">r1\nACGT\n>r2\nacgtn\n")
	f.Add("no header\nACGT\n")
	f.Add(">trunc")
	f.Add(">bin\n\x00\x01\xfe\n")
	f.Fuzz(func(t *testing.T, in string) {
		frags, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, fr := range frags {
			for _, b := range fr.Bases {
				switch b {
				case 'A', 'C', 'G', 'T', 'N':
				default:
					t.Fatalf("fragment %d holds non-canonical base %q", i, b)
				}
			}
		}
		// Accepted fragments must index without panicking.
		NewStore(frags)
	})
}
