GO ?= go

.PHONY: all build vet test race faults ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par ./internal/cluster

# Full-repo race run; the experiments package makes this slow.
race-all:
	$(GO) test -race ./...

# CI-sized fault-tolerance sweep: kills workers and drops messages,
# checks the partition stays exactly the serial one.
faults:
	$(GO) run ./cmd/experiments -run faults -quick

ci: vet build test race faults
