GO ?= go

.PHONY: all build vet test race test-race cover faults pipeline-faults sim fuzz-smoke obs bench bench-check analyze-smoke transport-conformance obs-live-smoke service-smoke outofcore-smoke profile-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par ./internal/cluster ./internal/obs

# Race detector over the concurrency-heavy packages the simulation
# harness exercises (runtime, clustering protocol, GST build, harness).
test-race:
	$(GO) test -race ./internal/par ./internal/cluster ./internal/pgst ./internal/sim

# Coverage gate: the harness and its union-find oracle model must stay
# above 70% statement coverage.
cover:
	@$(GO) test -cover ./internal/sim ./internal/unionfind > .cover.tmp || { cat .cover.tmp; rm -f .cover.tmp; exit 1; }
	@cat .cover.tmp
	@awk '/coverage:/ { p = $$5; sub(/%/, "", p); if (p + 0 < 70) { print "coverage gate: " $$2 " below 70% (" p "%)"; bad = 1 } } END { exit bad }' .cover.tmp; st=$$?; rm -f .cover.tmp; exit $$st

# Full-repo race run; the experiments package makes this slow.
race-all:
	$(GO) test -race ./...

# CI-sized fault-tolerance sweep: kills workers and drops messages,
# checks the partition stays exactly the serial one.
faults:
	$(GO) run ./cmd/experiments -run faults -quick

# End-to-end fault model: GST-phase crash + clustering crash +
# corrupting wire in one run (partition must stay exactly serial),
# kill-and-resume at every pipeline phase boundary (contigs must stay
# byte-identical), and quarantined assembly (must complete, not abort).
pipeline-faults:
	$(GO) run ./cmd/experiments -run pipelinefaults -quick

# Bounded simulation campaign: randomized (machine, genome, faults,
# schedule) cases, each checked against the serial-equivalence oracles.
# Failures print a (campaign, case) tuple that replays them exactly.
sim:
	$(GO) run ./cmd/simrunner -campaign 1 -seeds 40 -j 4

# Committed seed corpora for every fuzz target; a target whose corpus
# directory is empty fails before fuzzing starts.
FUZZ_CORPORA := testdata/fuzz/FuzzReadFASTA \
	internal/seq/testdata/fuzz/FuzzReadFASTA \
	internal/seq/testdata/fuzz/FuzzReadQual \
	internal/wire/testdata/fuzz/FuzzReader \
	internal/cluster/testdata/fuzz/FuzzDecodeReport \
	internal/par/nettrans/testdata/fuzz/FuzzDecodeFrame \
	internal/seq/diskstore/testdata/fuzz/FuzzOpenIndex \
	internal/seq/diskstore/testdata/fuzz/FuzzReadData \
	internal/obs/prof/testdata/fuzz/FuzzParseProfile

# Short fuzz passes over every parser the pipeline feeds untrusted
# bytes to: FASTA and qual readers plus the wire-format decoders.
fuzz-smoke:
	@for d in $(FUZZ_CORPORA); do \
		ls $$d/* >/dev/null 2>&1 || { echo "fuzz-smoke: empty corpus: $$d"; exit 1; }; \
	done
	$(GO) test -run=NONE -fuzz=FuzzReadFASTA -fuzztime=10s .
	$(GO) test -run=NONE -fuzz=FuzzReadFASTA -fuzztime=10s ./internal/seq
	$(GO) test -run=NONE -fuzz=FuzzReadQual -fuzztime=10s ./internal/seq
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDecodeReport -fuzztime=10s ./internal/cluster
	$(GO) test -run=NONE -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/par/nettrans
	$(GO) test -run=NONE -fuzz=FuzzOpenIndex -fuzztime=10s ./internal/seq/diskstore
	$(GO) test -run=NONE -fuzz=FuzzReadData -fuzztime=10s ./internal/seq/diskstore
	$(GO) test -run=NONE -fuzz=FuzzParseProfile -fuzztime=10s ./internal/obs/prof

# Instrumented quickstart: runs two quick experiments with tracing on
# and validates that every emitted trace file parses as balanced
# Chrome trace_event JSON (tracecheck is the Perfetto-load stand-in).
OBS_TRACE_DIR := $(shell mktemp -d 2>/dev/null || echo /tmp/obs-traces)
obs:
	$(GO) run ./cmd/experiments -run fig5,faults,pipelinefaults -quick -ranks 2,4 -trace-out $(OBS_TRACE_DIR)
	$(GO) run ./cmd/tracecheck $(OBS_TRACE_DIR)/*.trace.json
	rm -rf $(OBS_TRACE_DIR)

# Continuous benchmarks: fixed-seed workloads measured in host terms
# (ns/op, allocs, peak RSS) and modeled terms (critical path,
# comm/comp split from the causal DAG). `bench` rewrites the committed
# baselines; `bench-check` gates the current build against them with
# per-metric noise-calibrated thresholds and fails on regression.
bench:
	$(GO) run ./cmd/benchrun -workload cluster -out BENCH_cluster.json -profile-out PROF_cluster.txt
	$(GO) run ./cmd/benchrun -workload transport -ranks 4 -out BENCH_transport.json
	$(GO) run ./cmd/benchrun -workload pipeline -out BENCH_pipeline.json
	$(GO) run ./cmd/benchrun -workload outofcore -out BENCH_outofcore.json

bench-check:
	$(GO) run ./cmd/benchrun -workload cluster -check BENCH_cluster.json
	$(GO) run ./cmd/benchrun -workload transport -ranks 4 -check BENCH_transport.json
	$(GO) run ./cmd/benchrun -workload pipeline -check BENCH_pipeline.json
	# Out-of-core memory gate: mem/disk × scale-1/scale-10 subprocess
	# cells; the disk backend's peak-RSS ratio must stay flat while the
	# mem backend's must keep growing (proof the gate still bites).
	$(GO) run ./cmd/benchrun -workload outofcore -check BENCH_outofcore.json
	# Collector-on run against the collector-off baseline: live
	# telemetry streaming must cost less than the noise gates.
	$(GO) run ./cmd/benchrun -workload transport -ranks 4 -collector -check BENCH_transport.json
	# Profiling tax gate: alternating off/on iterations in one process;
	# the labeled capture must cost ≤5% (+50ms slack) over off.
	$(GO) run ./cmd/benchrun -workload cluster -profile-overhead

# Transport conformance: the sim partition and causal-trace oracles
# against every transport backend under the race detector — in-process
# goroutines, then TCP and Unix-socket ranks as real OS processes (the
# test binary re-executes itself as the workers), plus one case that
# SIGKILLs a worker process mid-phase and requires lease-based
# recovery to the canonical partition.
transport-conformance:
	$(GO) test -race -v -run TestConformance ./internal/transconf

# Live telemetry smoke: a 4-process TCP run streams deltas to a run
# collector which must be ready mid-run, survive a SIGKILLed worker
# (marking it dead while the job recovers), serve a final merged trace
# byte-identical to merging the per-process dumps, and produce a live
# causal analysis equal to the post-hoc one.
obs-live-smoke:
	$(GO) test -v -run TestObsLive ./internal/transconf

# Assembly-as-a-service smoke: a real asmserve-style server (the test
# binary re-executes itself as both the server and its job runners) is
# SIGKILLed mid-job and restarted on the same directory; the journal
# must replay, the job must resume to byte-identical contigs, a repeat
# submission must hit the cache, and a poison job must be quarantined
# after its retry budget without disturbing healthy jobs.
service-smoke:
	$(GO) test -v -run 'TestServiceSmoke|TestPoisonJobQuarantined|TestHangDeadlineAndQueueFull|TestDrainRequeuesAndRestartCompletes' ./internal/jobs

# Causal-analysis smoke: replay one sim case with its raw events dump,
# stitch the causal DAG and print the critical path; a malformed DAG
# (unmatched message edge, cycle, CP != makespan) fails the target.
ANALYZE_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp/analyze-smoke)
analyze-smoke:
	$(GO) run ./cmd/simrunner -campaign 1 -case 3 -events-out $(ANALYZE_TMP)/case3.events.json
	$(GO) run ./cmd/traceanalyze -chrome $(ANALYZE_TMP)/case3.crit.json $(ANALYZE_TMP)/case3.events.json
	$(GO) run ./cmd/tracecheck $(ANALYZE_TMP)/case3.crit.json
	rm -rf $(ANALYZE_TMP)

# Profiling-plane smoke under the race detector: capture a labeled
# 8-rank run (session manager + label hooks), decode every artifact
# with the in-repo pprof reader, cross-rank merge, and render the
# critical-path attribution report — plus the SIGKILL+resume profiled
# job whose archived merge must decode after restart.
PROF_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp/profile-smoke)
profile-smoke:
	$(GO) test -race -v -run 'TestProfileLabelExactness' ./internal/bench
	$(GO) test -race -v -run 'TestProfiledJobSurvivesKill' ./internal/jobs
	$(GO) run ./cmd/benchrun -workload cluster -iters 1 -profile-dir $(PROF_TMP)
	$(GO) run ./cmd/asmprof $(PROF_TMP)
	$(GO) run ./cmd/asmprof -folded $(PROF_TMP) > $(PROF_TMP)/folded.txt
	$(GO) run ./cmd/asmprof -merge-out $(PROF_TMP)/merged.cpu.pb.gz $(PROF_TMP)
	rm -rf $(PROF_TMP)

# Out-of-core smoke: the disk-backed pipeline end to end under the
# race detector — fresh run matches the in-memory contigs, the store
# artifact is journaled, resume from every rollback depth is
# byte-identical (reusing, not rebuilding, the checksummed store), and
# a corrupted store artifact refuses to resume.
outofcore-smoke:
	$(GO) test -race -v -run 'TestOutOfCore' ./internal/pipeline

ci: vet build test race test-race cover faults pipeline-faults sim fuzz-smoke obs analyze-smoke transport-conformance obs-live-smoke service-smoke outofcore-smoke profile-smoke bench-check
