GO ?= go

.PHONY: all build vet test race faults obs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par ./internal/cluster ./internal/obs

# Full-repo race run; the experiments package makes this slow.
race-all:
	$(GO) test -race ./...

# CI-sized fault-tolerance sweep: kills workers and drops messages,
# checks the partition stays exactly the serial one.
faults:
	$(GO) run ./cmd/experiments -run faults -quick

# Instrumented quickstart: runs two quick experiments with tracing on
# and validates that every emitted trace file parses as balanced
# Chrome trace_event JSON (tracecheck is the Perfetto-load stand-in).
OBS_TRACE_DIR := $(shell mktemp -d 2>/dev/null || echo /tmp/obs-traces)
obs:
	$(GO) run ./cmd/experiments -run fig5,faults -quick -ranks 2,4 -trace-out $(OBS_TRACE_DIR)
	$(GO) run ./cmd/tracecheck $(OBS_TRACE_DIR)/*.trace.json
	rm -rf $(OBS_TRACE_DIR)

ci: vet build test race faults obs
