GO ?= go

.PHONY: all build vet test race faults pipeline-faults fuzz-smoke obs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par ./internal/cluster ./internal/obs

# Full-repo race run; the experiments package makes this slow.
race-all:
	$(GO) test -race ./...

# CI-sized fault-tolerance sweep: kills workers and drops messages,
# checks the partition stays exactly the serial one.
faults:
	$(GO) run ./cmd/experiments -run faults -quick

# End-to-end fault model: GST-phase crash + clustering crash +
# corrupting wire in one run (partition must stay exactly serial),
# kill-and-resume at every pipeline phase boundary (contigs must stay
# byte-identical), and quarantined assembly (must complete, not abort).
pipeline-faults:
	$(GO) run ./cmd/experiments -run pipelinefaults -quick

# Short fuzz passes over every parser the pipeline feeds untrusted
# bytes to: FASTA and qual readers plus the wire-format decoders.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadFASTA -fuzztime=10s .
	$(GO) test -run=NONE -fuzz=FuzzReadFASTA -fuzztime=10s ./internal/seq
	$(GO) test -run=NONE -fuzz=FuzzReadQual -fuzztime=10s ./internal/seq
	$(GO) test -run=NONE -fuzz=FuzzReader -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDecodeReport -fuzztime=10s ./internal/cluster

# Instrumented quickstart: runs two quick experiments with tracing on
# and validates that every emitted trace file parses as balanced
# Chrome trace_event JSON (tracecheck is the Perfetto-load stand-in).
OBS_TRACE_DIR := $(shell mktemp -d 2>/dev/null || echo /tmp/obs-traces)
obs:
	$(GO) run ./cmd/experiments -run fig5,faults,pipelinefaults -quick -ranks 2,4 -trace-out $(OBS_TRACE_DIR)
	$(GO) run ./cmd/tracecheck $(OBS_TRACE_DIR)/*.trace.json
	rm -rf $(OBS_TRACE_DIR)

ci: vet build test race faults pipeline-faults fuzz-smoke obs
