// traceanalyze stitches a raw events dump (obs.Dump JSON, written by
// -events-out flags or obs.Tracer.WriteEvents) into a causal DAG and
// reports the critical path, per-rank and per-phase comm/comp/idle
// decompositions, and straggler structure of the run.
//
// Usage:
//
//	traceanalyze [-json] [-chrome out.json] [-top N] run.events.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as deterministic JSON instead of text")
	chromeOut := flag.String("chrome", "", "also write a Chrome trace with critical-path spans marked (crit:true) to this file")
	top := flag.Int("top", 10, "how many slowest spans to report")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanalyze [-json] [-chrome out.json] [-top N] run.events.json")
		os.Exit(2)
	}

	dump, err := obs.ReadDumpFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
	rep, err := analyze.Analyze(dump, analyze.Options{TopSpans: *top})
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}

	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceanalyze:", err)
			os.Exit(1)
		}
		if err := rep.WriteAnnotatedChrome(f, dump); err != nil {
			fmt.Fprintln(os.Stderr, "traceanalyze:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "traceanalyze:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}
