// Command simrunner drives the deterministic simulation campaign: it
// expands a campaign seed into randomized pipeline runs — machine
// size, input genome, fault plan, schedule perturbation — and checks
// the serial-equivalence oracles after each one (see internal/sim).
// Every failure prints the (campaign, case) tuple and the exact
// command line that replays it.
//
// Usage:
//
//	simrunner -campaign 1 -seeds 200        # run a 200-case campaign
//	simrunner -campaign 1 -case 137         # replay one case
//	simrunner -campaign 1 -case 137 -shrink # replay and minimize it
//
// Exits non-zero if any oracle fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

func main() {
	var (
		campaign = flag.Int64("campaign", 1, "campaign seed; every case derives from (campaign, index)")
		seeds    = flag.Int("seeds", 100, "number of cases to run")
		caseIdx  = flag.Int("case", -1, "replay a single case index instead of a campaign")
		shrink   = flag.Bool("shrink", false, "minimize each failing case's fault surface by greedy field removal")
		events   = flag.String("events-out", "", "with -case: write the clustering run's raw events dump (input for traceanalyze)")
		workers  = flag.Int("j", 4, "cases run concurrently")
		verbose  = flag.Bool("v", false, "print every case, not just failures")
	)
	flag.Parse()

	if *caseIdx >= 0 {
		c := sim.CaseFor(*campaign, *caseIdx)
		fmt.Println(c)
		res := sim.RunCase(c)
		if *events != "" && res.Trace != nil {
			f, err := os.Create(*events)
			if err == nil {
				err = res.Trace.WriteEvents(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "simrunner:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *events)
		}
		if !res.Failed() {
			fmt.Printf("ok: all oracles held (%.1fs)\n", res.Wall.Seconds())
			return
		}
		fmt.Print(sim.FailureReport(res))
		if *shrink {
			shrunk(c)
		}
		os.Exit(1)
	}

	fmt.Printf("campaign %d: %d cases, %d workers\n", *campaign, *seeds, *workers)
	cr := sim.Campaign(*campaign, *seeds, sim.CampaignOptions{
		Out: os.Stdout, Verbose: *verbose, Workers: *workers,
	})
	fmt.Println(cr)
	if cr.Failed == 0 {
		return
	}
	if *shrink {
		for _, res := range cr.Failures {
			shrunk(res.Case)
		}
	}
	os.Exit(1)
}

// shrunk minimizes one failing case and prints the smallest
// reproduction found.
func shrunk(c sim.Case) {
	fmt.Printf("shrinking %s ...\n", c.Repro())
	min, evals := sim.Shrink(c, func(x sim.Case) bool {
		r := sim.RunCase(x)
		return r.Failed()
	})
	fmt.Printf("minimal after %d evals: %s\n", evals, min)
}
