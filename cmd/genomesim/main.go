// Command genomesim synthesizes the paper's evaluation workloads as
// FASTA files: a maize-like gene-enriched mixture, a uniformly
// shotgunned genome, or an environmental community sample.
//
// Usage:
//
//	genomesim -kind maize -len 200000 -out maize      # maize_reads.fa + maize_genome.fa
//	genomesim -kind wgs -len 100000 -coverage 8.8 -out fly
//	genomesim -kind env -species 20 -reads 3000 -out sea
//
// Read headers carry the ground-truth origin
// (source/start/end/strand) so downstream validation can recover it.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	kind := flag.String("kind", "maize", "workload: maize | wgs | env")
	length := flag.Int("len", 200000, "genome length (maize, wgs)")
	coverage := flag.Float64("coverage", 8.8, "shotgun coverage (wgs)")
	species := flag.Int("species", 20, "community size (env)")
	reads := flag.Int("reads", 3000, "total reads (env)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "sim", "output file prefix")
	obsAddr := flag.String("obs-addr", "", "serve /metrics and /debug/pprof on this host:port while running")
	flag.Parse()

	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, obs.NewRegistry(), nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genomesim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics /debug/pprof)\n", srv.Addr)
	}

	rng := rand.New(rand.NewSource(*seed))
	var frags []*seq.Fragment
	var genomes []*simulate.Genome

	switch *kind {
	case "maize":
		m := simulate.MaizeLike(rng, *length)
		frags = m.All()
		genomes = []*simulate.Genome{m.Genome}
	case "wgs":
		g, r := simulate.DrosophilaLike(rng, *length)
		// DrosophilaLike fixes coverage at 8.8×; resample when asked
		// for something else.
		if *coverage != 8.8 {
			r = simulate.SampleWGS(rng, g, *coverage, simulate.DefaultReadConfig(), "wgs")
		}
		frags = r
		genomes = []*simulate.Genome{g}
	case "env":
		gs, r := simulate.SargassoLike(rng, *species, *reads)
		frags = r
		genomes = gs
	default:
		fmt.Fprintf(os.Stderr, "genomesim: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	writeFasta := func(path string, recs []seq.Record) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genomesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := seq.WriteFASTA(f, recs, 0); err != nil {
			fmt.Fprintln(os.Stderr, "genomesim:", err)
			os.Exit(1)
		}
	}

	readRecs := make([]seq.Record, len(frags))
	qualRecs := make([]seq.QualRecord, 0, len(frags))
	for i, fr := range frags {
		name := fr.Name
		if o := fr.Origin; o != nil {
			strand := "+"
			if o.Reverse {
				strand = "-"
			}
			name = fmt.Sprintf("%s source=%s start=%d end=%d strand=%s", fr.Name, o.Source, o.Start, o.End, strand)
		}
		readRecs[i] = seq.Record{Name: name, Bases: fr.Bases}
		if fr.Qual != nil {
			qualRecs = append(qualRecs, seq.QualRecord{Name: name, Quals: fr.Qual})
		}
	}
	writeFasta(*out+"_reads.fa", readRecs)
	if len(qualRecs) > 0 {
		qf, err := os.Create(*out + "_reads.qual")
		if err != nil {
			fmt.Fprintln(os.Stderr, "genomesim:", err)
			os.Exit(1)
		}
		if err := seq.WriteQual(qf, qualRecs, 0); err != nil {
			fmt.Fprintln(os.Stderr, "genomesim:", err)
			os.Exit(1)
		}
		qf.Close()
	}

	genomeRecs := make([]seq.Record, len(genomes))
	for i, g := range genomes {
		genomeRecs[i] = seq.Record{Name: g.Name, Bases: g.Seq}
	}
	writeFasta(*out+"_genome.fa", genomeRecs)

	total := 0
	for _, fr := range frags {
		total += len(fr.Bases)
	}
	fmt.Printf("wrote %d reads (%d bases) to %s_reads.fa and %d source sequences to %s_genome.fa\n",
		len(frags), total, *out, len(genomes), *out)
}
