// Command asmprof turns the profiling plane's .pb.gz artifacts into
// critical-path attribution reports: which functions and allocation
// sites burn the phase the causal DAG says gates the run, per phase
// per rank, decoded entirely by the in-repo pprof reader.
//
// Usage:
//
//	asmprof DIR                         # report over every artifact in DIR
//	asmprof -events DIR/events.json DIR # join against the causal critical path
//	asmprof -json DIR                   # machine-readable report
//	asmprof -folded -value cpu DIR      # collapsed stacks for a flamegraph
//	asmprof -merge-out merged.pb.gz DIR # write the cross-rank merged CPU profile
//	asmprof -diff OLDDIR NEWDIR         # what changed between two captures
//
// DIR holds artifacts a profiling session wrote (benchrun -profile-dir,
// asmcluster/asmpipeline -prof-dir, or a job's prof/ directory):
// *.cpu.pb.gz, *.heap*.pb.gz, *.allocs.pb.gz, plus optionally the
// run's events.json. With -events (or an events.json found in DIR)
// the critical-path phase comes from the analyze causal DAG;
// otherwise the largest labeled CPU phase stands in. Truncated
// artifacts (a SIGKILLed attempt's partial stream) are skipped, so a
// report is reproducible from whatever survived.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/prof"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asmprof:", err)
	os.Exit(1)
}

func main() {
	eventsPath := flag.String("events", "", "events dump to derive the causal critical path from (default: DIR/events.json when present)")
	jsonOut := flag.Bool("json", false, "emit the attribution report as JSON")
	folded := flag.Bool("folded", false, "emit collapsed stacks (flamegraph input) instead of a report")
	value := flag.String("value", "cpu", "sample value for -folded: a sample type name, or last type when absent")
	top := flag.Int("top", 5, "entries per ranked list")
	mergeOut := flag.String("merge-out", "", "write the cross-rank merged CPU profile to this .pb.gz file")
	diff := flag.Bool("diff", false, "compare two capture directories: asmprof -diff OLD NEW")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-diff wants exactly two directories, got %d", flag.NArg()))
		}
		runDiff(flag.Arg(0), flag.Arg(1), *top, *jsonOut)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmprof [flags] ARTIFACT-DIR  (see asmprof -h)")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	cpus, allocs := loadDir(dir)
	if len(cpus) == 0 && len(allocs) == 0 {
		fail(fmt.Errorf("no profile artifacts under %s", dir))
	}

	if *mergeOut != "" {
		if len(cpus) == 0 {
			fail(fmt.Errorf("no CPU profiles to merge under %s", dir))
		}
		merged, err := prof.Merge(cpus...)
		if err != nil {
			fail(err)
		}
		if err := merged.WriteFile(*mergeOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote merged profile %s (%d samples)\n", *mergeOut, len(merged.Samples))
		return
	}

	if *folded {
		if len(cpus) == 0 {
			fail(fmt.Errorf("no CPU profiles under %s", dir))
		}
		merged, err := prof.Merge(cpus...)
		if err != nil {
			fail(err)
		}
		if err := prof.WriteFolded(os.Stdout, merged, merged.ValueIndex(*value)); err != nil {
			fail(err)
		}
		return
	}

	crit := loadCritPhases(dir, *eventsPath)
	rep := prof.Attribute(cpus, allocs, crit, prof.Options{Top: *top})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fail(err)
	}
}

// loadDir parses every artifact in dir, skipping what cannot parse
// (with a note — a truncated stream from a killed process is normal
// after a crash+resume).
func loadDir(dir string) (cpus, allocs []*prof.Profile) {
	cpuPaths, _, allocPaths := prof.DirArtifacts(dir)
	var skipped []string
	var err error
	cpus, skipped, err = prof.ParseFiles(cpuPaths)
	if err != nil {
		fail(err)
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "asmprof: skipping unparseable %s\n", s)
	}
	allocs, skipped, err = prof.ParseFiles(allocPaths)
	if err != nil {
		fail(err)
	}
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "asmprof: skipping unparseable %s\n", s)
	}
	return cpus, allocs
}

// loadCritPhases derives the causal critical-path phase totals from
// an events dump: the -events flag, or DIR/events.json when present.
// No dump means no join — attribution falls back to CPU samples.
func loadCritPhases(dir, eventsPath string) []prof.CritPhaseSec {
	if eventsPath == "" {
		candidate := filepath.Join(dir, "events.json")
		if _, err := os.Stat(candidate); err != nil {
			return nil
		}
		eventsPath = candidate
	}
	d, err := obs.ReadDumpFile(eventsPath)
	if err != nil {
		fail(err)
	}
	rep, err := analyze.Analyze(d, analyze.Options{TopSpans: 1})
	if err != nil {
		fail(fmt.Errorf("analyzing %s: %w", eventsPath, err))
	}
	return bench.CritPhases(rep)
}

// runDiff localizes a regression between two captures: per-function
// flat CPU deltas and per-site allocation deltas, largest first.
func runDiff(oldDir, newDir string, top int, jsonOut bool) {
	oldCPUs, oldAllocs := loadDir(oldDir)
	newCPUs, newAllocs := loadDir(newDir)
	cpu := prof.DiffCPU(oldCPUs, newCPUs, top)
	alloc := prof.DiffAllocs(oldAllocs, newAllocs, top)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"cpu": cpu, "allocs": alloc}); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("CPU deltas (%s → %s):\n", oldDir, newDir)
	if len(cpu) == 0 {
		fmt.Println("  none")
	}
	for _, d := range cpu {
		fmt.Printf("  %+12.1fms  (%.1fms → %.1fms)  %s\n",
			float64(d.Delta)/1e6, float64(d.OldNanos)/1e6, float64(d.NewNanos)/1e6, d.Function)
	}
	fmt.Printf("\nallocation deltas:\n")
	if len(alloc) == 0 {
		fmt.Println("  none")
	}
	for _, d := range alloc {
		loc := d.Function
		if d.File != "" {
			loc = fmt.Sprintf("%s (%s:%d)", d.Function, d.File, d.Line)
		}
		fmt.Printf("  %+12.1fMB  %+10d objs  %s\n",
			float64(d.DeltaBytes)/(1<<20), d.NewObjects-d.OldObjects, loc)
	}
}
