// Command asmpipeline runs the full cluster-then-assemble pipeline on
// a FASTA read file and writes assembled contigs.
//
// Usage:
//
//	asmpipeline -in reads.fa -out contigs.fa -ranks 8 -mask
//
// -mask enables statistical repeat detection from a 30 % read sample
// followed by masking (the Section 9.1 procedure); trimming and vector
// screening run only when the reads carry qualities / a known vector,
// so plain FASTA input passes through unmodified.
//
// With -workdir the run journals a manifest and checkpoints each phase
// boundary (preprocessed fragments, clustering partition, contigs);
// adding -resume skips phases the manifest records as complete and
// produces byte-identical output. -faults injects a fault plan into
// the parallel clustering engine (see -faults syntax in the error
// message for an empty spec); assembly always runs under a
// retry/quarantine guard, so a pathological cluster degrades to
// single-read contigs instead of aborting the pipeline.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/collector"
	"repro/internal/obs/prof"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/preprocess"
	"repro/internal/seq"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asmpipeline:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	qual := flag.String("qual", "", "optional companion .qual file (enables quality trimming)")
	out := flag.String("out", "contigs.fa", "output contig FASTA")
	ranks := flag.Int("ranks", 1, "simulated ranks (1 = serial clustering)")
	psi := flag.Int("psi", 20, "minimum maximal-match length ψ")
	w := flag.Int("w", 10, "GST bucket prefix length (≤ ψ)")
	mask := flag.Bool("mask", false, "statistically detect and mask repeats first")
	seed := flag.Int64("seed", 1, "seed for repeat-detection sampling")
	workdir := flag.String("workdir", "", "directory for the job manifest and phase checkpoints")
	resume := flag.Bool("resume", false, "resume from the workdir's manifest, skipping completed phases")
	faults := flag.String("faults", "", "fault plan for the parallel engine, e.g. crash=2@5,gstcrash=3@1,corrupt=0.01")
	store := flag.String("store", "mem", "sequence-store backend: mem (all-RAM) or disk (out-of-core 2-bit packed store under the workdir)")
	memBudget := flag.Int64("mem-budget", 0, "spilling GST byte budget; 0 builds the full forest in memory")
	retries := flag.Int("assembly-retries", 1, "per-cluster assembly retries before quarantine")
	deadline := flag.Duration("assembly-deadline", 0, "per-attempt assembly wall budget (0 = none)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace, /analyze and /debug/pprof on this host:port while running")
	eventsOut := flag.String("events-out", "", "write the raw events dump to this file (input for traceanalyze)")
	transport := flag.String("transport", "inproc", "run parallel clustering ranks as: inproc goroutines, or tcp / unix OS processes")
	collectorAddr := flag.String("collector", "", "run a live telemetry collector on this host:port; every rank streams health, metrics and trace deltas to it (poll with asmtop)")
	collectorLinger := flag.Duration("collector-linger", 2*time.Second, "keep the collector serving this long after the run completes so pollers observe the final state")
	profDir := flag.String("prof-dir", "", "capture a phase/rank-labeled CPU profile plus heap/alloc snapshots into this directory (asmprof reads them)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *workdir == "" {
		fail(fmt.Errorf("-resume requires -workdir"))
	}

	// Multi-process transport: this process is either the job root
	// (becomes rank 0 and forks the workers) or a re-executed child
	// that finds its rank in the environment. Every rank re-reads and
	// re-preprocesses the same input deterministically; only rank 0
	// assembles and writes output.
	rank := 0
	registry, epoch := "", uint64(0)
	colURL := ""
	var colSrv *obs.Server
	var fleet *launch.Fleet
	var trans par.Transport
	switch *transport {
	case "inproc":
	case "tcp", "unix":
		if *ranks < 2 {
			fail(fmt.Errorf("-transport %s requires -ranks ≥ 2", *transport))
		}
		if *faults != "" {
			fail(fmt.Errorf("-faults is for the simulated in-process machine; use real process kills with -transport %s", *transport))
		}
		child, isChild, err := launch.FromEnv()
		if err != nil {
			fail(err)
		}
		if isChild {
			rank, registry, epoch = child.Rank, child.Registry, child.Epoch
			// The parent decides per-rank observability: children listen
			// on the ephemeral address it forwarded (or not at all) and
			// stream to the collector it started.
			*obsAddr = child.ObsAddr
			colURL = child.Collector
		} else {
			if registry, err = os.MkdirTemp("", "asmpipeline-registry-"); err != nil {
				fail(err)
			}
			defer os.RemoveAll(registry)
			epoch = launch.Epoch()
			if *collectorAddr != "" {
				_, colSrv, colURL, err = launch.StartCollector(collector.Config{Ranks: *ranks, Job: "asmpipeline"}, *collectorAddr, registry, epoch)
				if err != nil {
					fail(err)
				}
				defer func() { time.Sleep(*collectorLinger); colSrv.Close() }()
				fmt.Printf("collector on %s (/status /ranks /healthz /readyz /analyze/live /events)\n", colURL)
			}
			childObs := ""
			if *obsAddr != "" {
				childObs = "127.0.0.1:0" // per-rank ephemeral server, address published to the registry
			}
			tel := launch.Telemetry{ObsAddr: childObs, Collector: colURL}
			if fleet, err = launch.Spawn(*ranks, *transport, registry, epoch, tel); err != nil {
				fail(err)
			}
			defer fleet.Wait()
		}
		if trans, err = launch.NewTransport(rank, *ranks, *transport, registry, epoch, 0); err != nil {
			fail(err)
		}
		defer trans.Close()
	default:
		fail(fmt.Errorf("unknown -transport %q (inproc, tcp, unix)", *transport))
	}

	if *collectorAddr != "" && trans == nil {
		// In-process machine: one collector, one reporter covering all
		// ranks (the single tracer spans the whole run).
		var err error
		_, colSrv, colURL, err = launch.StartCollector(collector.Config{Ranks: *ranks, Job: "asmpipeline"}, *collectorAddr, "", 0)
		if err != nil {
			fail(err)
		}
		defer func() { time.Sleep(*collectorLinger); colSrv.Close() }()
		fmt.Printf("collector on %s (/status /ranks /healthz /readyz /analyze/live /events)\n", colURL)
	}

	var tr *obs.Tracer
	var reg *obs.Registry
	if *obsAddr != "" || *eventsOut != "" || colURL != "" {
		tr = obs.NewTracer(*ranks, obs.DefaultRingCap)
		reg = obs.NewRegistry()
	}
	if *obsAddr != "" {
		srv, err := launch.ServeRankObs(*obsAddr, rank, reg, tr, registry, epoch, analyze.Endpoint(tr))
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		if rank == 0 {
			fmt.Printf("observability server on http://%s (/metrics /trace /timeline /analyze /debug/pprof)\n", srv.Addr)
		}
	}
	var rep *collector.Reporter
	if colURL != "" {
		covers := []int{rank}
		if trans == nil {
			covers = launch.AllRanks(*ranks)
		}
		rep = collector.StartReporter(collector.ReporterConfig{
			URL: colURL, Rank: rank, Covers: covers, Job: "asmpipeline",
			Tracer: tr, Registry: reg,
		})
	}

	// Graceful interrupt: flush the telemetry that exists so far (events
	// dump, reporter final flush with an "interrupted" verdict), stop
	// spawned worker ranks, and drain the collector before exiting.
	launch.OnSignal(func(sig os.Signal) {
		var dump *obs.Dump
		if tr != nil {
			dump = tr.Dump()
		}
		rep.Close(dump, false, "interrupted: "+sig.String())
		if *eventsOut != "" && dump != nil {
			writeEvents(dump, *eventsOut, rank, *transport)
		}
		if fleet != nil {
			fleet.KillAll()
		}
		if colSrv != nil {
			colSrv.Close()
		}
	})

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	frags, err := repro.ReadFASTA(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("malformed input %s: %w", *in, err))
	}

	if *qual != "" {
		qf, err := os.Open(*qual)
		if err != nil {
			fail(err)
		}
		quals, err := seq.ReadQual(qf)
		qf.Close()
		if err == nil {
			err = repro.AttachQuals(frags, quals)
		}
		if err != nil {
			fail(fmt.Errorf("malformed qualities %s: %w", *qual, err))
		}
	}

	cfg := repro.DefaultConfig()
	cfg.Cluster.Psi = *psi
	cfg.Cluster.W = *w
	cfg.Cluster.MemBudget = *memBudget
	switch *store {
	case "", repro.StoreMem:
	case repro.StoreDisk:
		cfg.Store = repro.StoreConfig{Backend: repro.StoreDisk}
	default:
		fail(fmt.Errorf("unknown -store %q (mem, disk)", *store))
	}
	cfg.PreprocessEnabled = *mask || *qual != ""
	if *mask {
		rng := rand.New(rand.NewSource(*seed))
		sample := preprocess.Sample(rng, frags, 0.3)
		cfg.Preprocess.Repeats = repro.DetectRepeats(sample, 16, 4)
	}
	if *ranks >= 2 {
		cfg.Parallel = repro.DefaultParallelConfig(*ranks)
		cfg.Parallel.Trace = tr
		cfg.Parallel.Metrics = reg
		if *faults != "" {
			plan, err := cluster.ParseFaults(*faults)
			if err != nil {
				fail(err)
			}
			cfg.Parallel.Faults = plan
		}
		if trans != nil {
			cfg.Parallel.FT = true // real processes genuinely die
			cfg.Transport = trans
			cfg.TransportRank = rank
		}
	} else if *faults != "" {
		fail(fmt.Errorf("-faults requires -ranks ≥ 2"))
	}
	cfg.AssemblyGuard = &assembly.Guard{
		Retries:  *retries,
		Backoff:  10 * time.Millisecond,
		Deadline: *deadline,
		Trace:    tr,
		Metrics:  reg,
	}

	// Out-of-core fields join the fingerprint only when set, so
	// existing all-RAM workdirs keep resuming.
	manifestFlags := fmt.Sprintf("psi=%d w=%d ranks=%d mask=%v qual=%v seed=%d",
		*psi, *w, *ranks, *mask, *qual != "", *seed)
	if cfg.Store.Backend == repro.StoreDisk {
		manifestFlags += " store=disk"
	}
	if *memBudget > 0 {
		manifestFlags += fmt.Sprintf(" membudget=%d", *memBudget)
	}
	var profSess *prof.Session
	if *profDir != "" {
		// PID-unique stems keep multi-process ranks from clobbering
		// each other in a shared -prof-dir.
		profSess, err = prof.Start(prof.Config{
			Dir:      *profDir,
			Name:     fmt.Sprintf("rank%d-p%d", rank, os.Getpid()),
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmpipeline: profiling disabled:", err)
		}
	}
	stopProf := func() {
		if profSess == nil {
			return
		}
		arts, perr := profSess.Stop()
		profSess = nil
		if perr != nil {
			fmt.Fprintln(os.Stderr, "asmpipeline: profile stop:", perr)
		} else if rank == 0 {
			fmt.Printf("profile artifacts: %s (asmprof %s)\n", arts.CPU, *profDir)
		}
	}

	res, err := pipeline.Run(frags, pipeline.Config{
		Core:    cfg,
		Workdir: *workdir,
		Resume:  *resume,
		Flags:   manifestFlags,
	})
	stopProf()
	if err != nil {
		rep.Close(nil, false, err.Error())
		fail(err)
	}

	// One tracer snapshot shared by the events file and the reporter's
	// final flush, so the collector's merged trace is byte-identical to
	// merging the dump files.
	var dump *obs.Dump
	if tr != nil {
		dump = tr.Dump()
	}
	if rank != 0 {
		// Worker-rank process: clustering is done, the master owns
		// all remaining phases and every output file.
		writeEvents(dump, *eventsOut, rank, *transport)
		rep.Close(dump, true, "")
		return
	}

	summaryTable(len(frags), res, os.Stdout)

	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	var contigFrags []*repro.Fragment
	for ci, cs := range res.Contigs {
		for ki, c := range cs {
			contigFrags = append(contigFrags, &repro.Fragment{
				Name:  fmt.Sprintf("contig_%d_%d len=%d reads=%d depth=%.1f", ci, ki, len(c.Bases), len(c.Reads), c.Depth),
				Bases: c.Bases,
			})
		}
	}
	if err := repro.WriteFASTA(of, contigFrags); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d contigs to %s\n", len(contigFrags), *out)

	writeEvents(dump, *eventsOut, 0, *transport)
	rep.Close(dump, true, "")
}

// writeEvents writes one process's events dump. Transport runs suffix
// the path with the rank, one dump per OS process, so cross-rank
// analysis can merge them afterwards (tracecheck -events a.rank0 ...).
func writeEvents(d *obs.Dump, path string, rank int, transport string) {
	if path == "" || d == nil {
		return
	}
	if transport != "inproc" {
		path = fmt.Sprintf("%s.rank%d", path, rank)
	}
	ef, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := d.WriteJSON(ef); err == nil {
		err = ef.Close()
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}
