// Command asmpipeline runs the full cluster-then-assemble pipeline on
// a FASTA read file and writes assembled contigs.
//
// Usage:
//
//	asmpipeline -in reads.fa -out contigs.fa -ranks 8 -mask
//
// -mask enables statistical repeat detection from a 30 % read sample
// followed by masking (the Section 9.1 procedure); trimming and vector
// screening run only when the reads carry qualities / a known vector,
// so plain FASTA input passes through unmodified.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/preprocess"
	"repro/internal/report"
	"repro/internal/seq"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	qual := flag.String("qual", "", "optional companion .qual file (enables quality trimming)")
	out := flag.String("out", "contigs.fa", "output contig FASTA")
	ranks := flag.Int("ranks", 1, "simulated ranks (1 = serial clustering)")
	psi := flag.Int("psi", 20, "minimum maximal-match length ψ")
	w := flag.Int("w", 10, "GST bucket prefix length (≤ ψ)")
	mask := flag.Bool("mask", false, "statistically detect and mask repeats first")
	seed := flag.Int64("seed", 1, "seed for repeat-detection sampling")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this host:port while running")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	var tr *obs.Tracer
	var reg *obs.Registry
	if *obsAddr != "" {
		tr = obs.NewTracer(*ranks, obs.DefaultRingCap)
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*obsAddr, reg, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmpipeline:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics /trace /timeline /debug/pprof)\n", srv.Addr)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmpipeline:", err)
		os.Exit(1)
	}
	frags, err := repro.ReadFASTA(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmpipeline:", err)
		os.Exit(1)
	}

	if *qual != "" {
		qf, err := os.Open(*qual)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmpipeline:", err)
			os.Exit(1)
		}
		quals, err := seq.ReadQual(qf)
		qf.Close()
		if err == nil {
			err = repro.AttachQuals(frags, quals)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmpipeline:", err)
			os.Exit(1)
		}
	}

	cfg := repro.DefaultConfig()
	cfg.Cluster.Psi = *psi
	cfg.Cluster.W = *w
	cfg.PreprocessEnabled = *mask || *qual != ""
	if *mask {
		rng := rand.New(rand.NewSource(*seed))
		sample := preprocess.Sample(rng, frags, 0.3)
		cfg.Preprocess.Repeats = repro.DetectRepeats(sample, 16, 4)
	}
	if *ranks >= 2 {
		cfg.Parallel = repro.DefaultParallelConfig(*ranks)
		cfg.Parallel.Trace = tr
		cfg.Parallel.Metrics = reg
	}

	res, err := repro.Run(frags, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmpipeline:", err)
		os.Exit(1)
	}

	tb := report.NewTable("Pipeline summary", "metric", "value")
	tb.AddRow("input fragments", report.Int(int64(len(frags))))
	tb.AddRow("fragments clustered", report.Int(int64(res.Store.N())))
	tb.AddRow("clusters", report.Int(int64(len(res.Clusters))))
	tb.AddRow("singletons", report.Int(int64(len(res.Singletons))))
	tb.AddRow("contigs", report.Int(int64(res.TotalContigs())))
	tb.AddRow("contigs per cluster", report.F2(res.ContigsPerCluster()))
	tb.AddRow("alignment savings", report.Pct(res.Clustering.Stats.SavingsFraction()))
	tb.Fprint(os.Stdout)

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmpipeline:", err)
		os.Exit(1)
	}
	defer of.Close()
	var contigFrags []*repro.Fragment
	for ci, cs := range res.Contigs {
		for ki, c := range cs {
			contigFrags = append(contigFrags, &repro.Fragment{
				Name:  fmt.Sprintf("contig_%d_%d len=%d reads=%d depth=%.1f", ci, ki, len(c.Bases), len(c.Reads), c.Depth),
				Bases: c.Bases,
			})
		}
	}
	if err := repro.WriteFASTA(of, contigFrags); err != nil {
		fmt.Fprintln(os.Stderr, "asmpipeline:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d contigs to %s\n", len(contigFrags), *out)
}
