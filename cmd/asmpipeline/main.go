// Command asmpipeline runs the full cluster-then-assemble pipeline on
// a FASTA read file and writes assembled contigs.
//
// Usage:
//
//	asmpipeline -in reads.fa -out contigs.fa -ranks 8 -mask
//
// -mask enables statistical repeat detection from a 30 % read sample
// followed by masking (the Section 9.1 procedure); trimming and vector
// screening run only when the reads carry qualities / a known vector,
// so plain FASTA input passes through unmodified.
//
// With -workdir the run journals a manifest and checkpoints each phase
// boundary (preprocessed fragments, clustering partition, contigs);
// adding -resume skips phases the manifest records as complete and
// produces byte-identical output. -faults injects a fault plan into
// the parallel clustering engine (see -faults syntax in the error
// message for an empty spec); assembly always runs under a
// retry/quarantine guard, so a pathological cluster degrades to
// single-read contigs instead of aborting the pipeline.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/preprocess"
	"repro/internal/seq"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asmpipeline:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	qual := flag.String("qual", "", "optional companion .qual file (enables quality trimming)")
	out := flag.String("out", "contigs.fa", "output contig FASTA")
	ranks := flag.Int("ranks", 1, "simulated ranks (1 = serial clustering)")
	psi := flag.Int("psi", 20, "minimum maximal-match length ψ")
	w := flag.Int("w", 10, "GST bucket prefix length (≤ ψ)")
	mask := flag.Bool("mask", false, "statistically detect and mask repeats first")
	seed := flag.Int64("seed", 1, "seed for repeat-detection sampling")
	workdir := flag.String("workdir", "", "directory for the job manifest and phase checkpoints")
	resume := flag.Bool("resume", false, "resume from the workdir's manifest, skipping completed phases")
	faults := flag.String("faults", "", "fault plan for the parallel engine, e.g. crash=2@5,gstcrash=3@1,corrupt=0.01")
	retries := flag.Int("assembly-retries", 1, "per-cluster assembly retries before quarantine")
	deadline := flag.Duration("assembly-deadline", 0, "per-attempt assembly wall budget (0 = none)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace, /analyze and /debug/pprof on this host:port while running")
	eventsOut := flag.String("events-out", "", "write the raw events dump to this file (input for traceanalyze)")
	transport := flag.String("transport", "inproc", "run parallel clustering ranks as: inproc goroutines, or tcp / unix OS processes")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *workdir == "" {
		fail(fmt.Errorf("-resume requires -workdir"))
	}

	// Multi-process transport: this process is either the job root
	// (becomes rank 0 and forks the workers) or a re-executed child
	// that finds its rank in the environment. Every rank re-reads and
	// re-preprocesses the same input deterministically; only rank 0
	// assembles and writes output.
	rank := 0
	var fleet *launch.Fleet
	var trans par.Transport
	switch *transport {
	case "inproc":
	case "tcp", "unix":
		if *ranks < 2 {
			fail(fmt.Errorf("-transport %s requires -ranks ≥ 2", *transport))
		}
		if *faults != "" {
			fail(fmt.Errorf("-faults is for the simulated in-process machine; use real process kills with -transport %s", *transport))
		}
		child, isChild, err := launch.FromEnv()
		if err != nil {
			fail(err)
		}
		registry, epoch := "", uint64(0)
		if isChild {
			rank, registry, epoch = child.Rank, child.Registry, child.Epoch
			*obsAddr = "" // one observability server per job, owned by rank 0
		} else {
			if registry, err = os.MkdirTemp("", "asmpipeline-registry-"); err != nil {
				fail(err)
			}
			defer os.RemoveAll(registry)
			epoch = launch.Epoch()
			if fleet, err = launch.Spawn(*ranks, *transport, registry, epoch); err != nil {
				fail(err)
			}
			defer fleet.Wait()
		}
		if trans, err = launch.NewTransport(rank, *ranks, *transport, registry, epoch, 0); err != nil {
			fail(err)
		}
		defer trans.Close()
	default:
		fail(fmt.Errorf("unknown -transport %q (inproc, tcp, unix)", *transport))
	}

	var tr *obs.Tracer
	var reg *obs.Registry
	if *obsAddr != "" || *eventsOut != "" {
		tr = obs.NewTracer(*ranks, obs.DefaultRingCap)
		reg = obs.NewRegistry()
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg, tr, analyze.Endpoint(tr))
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics /trace /timeline /analyze /debug/pprof)\n", srv.Addr)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	frags, err := repro.ReadFASTA(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("malformed input %s: %w", *in, err))
	}

	if *qual != "" {
		qf, err := os.Open(*qual)
		if err != nil {
			fail(err)
		}
		quals, err := seq.ReadQual(qf)
		qf.Close()
		if err == nil {
			err = repro.AttachQuals(frags, quals)
		}
		if err != nil {
			fail(fmt.Errorf("malformed qualities %s: %w", *qual, err))
		}
	}

	cfg := repro.DefaultConfig()
	cfg.Cluster.Psi = *psi
	cfg.Cluster.W = *w
	cfg.PreprocessEnabled = *mask || *qual != ""
	if *mask {
		rng := rand.New(rand.NewSource(*seed))
		sample := preprocess.Sample(rng, frags, 0.3)
		cfg.Preprocess.Repeats = repro.DetectRepeats(sample, 16, 4)
	}
	if *ranks >= 2 {
		cfg.Parallel = repro.DefaultParallelConfig(*ranks)
		cfg.Parallel.Trace = tr
		cfg.Parallel.Metrics = reg
		if *faults != "" {
			plan, err := cluster.ParseFaults(*faults)
			if err != nil {
				fail(err)
			}
			cfg.Parallel.Faults = plan
		}
		if trans != nil {
			cfg.Parallel.FT = true // real processes genuinely die
			cfg.Transport = trans
			cfg.TransportRank = rank
		}
	} else if *faults != "" {
		fail(fmt.Errorf("-faults requires -ranks ≥ 2"))
	}
	cfg.AssemblyGuard = &assembly.Guard{
		Retries:  *retries,
		Backoff:  10 * time.Millisecond,
		Deadline: *deadline,
		Trace:    tr,
		Metrics:  reg,
	}

	res, err := pipeline.Run(frags, pipeline.Config{
		Core:    cfg,
		Workdir: *workdir,
		Resume:  *resume,
		Flags: fmt.Sprintf("psi=%d w=%d ranks=%d mask=%v qual=%v seed=%d",
			*psi, *w, *ranks, *mask, *qual != "", *seed),
	})
	if err != nil {
		fail(err)
	}

	if rank != 0 {
		// Worker-rank process: clustering is done, the master owns
		// all remaining phases and every output file.
		writeEvents(tr, *eventsOut, rank, *transport)
		return
	}

	summaryTable(len(frags), res, os.Stdout)

	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	var contigFrags []*repro.Fragment
	for ci, cs := range res.Contigs {
		for ki, c := range cs {
			contigFrags = append(contigFrags, &repro.Fragment{
				Name:  fmt.Sprintf("contig_%d_%d len=%d reads=%d depth=%.1f", ci, ki, len(c.Bases), len(c.Reads), c.Depth),
				Bases: c.Bases,
			})
		}
	}
	if err := repro.WriteFASTA(of, contigFrags); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d contigs to %s\n", len(contigFrags), *out)

	writeEvents(tr, *eventsOut, 0, *transport)
}

// writeEvents dumps this process's tracer. Transport runs suffix the
// path with the rank, one dump per OS process, so cross-rank analysis
// can merge them afterwards (tracecheck -events a.rank0 a.rank1 ...).
func writeEvents(tr *obs.Tracer, path string, rank int, transport string) {
	if path == "" || tr == nil {
		return
	}
	if transport != "inproc" {
		path = fmt.Sprintf("%s.rank%d", path, rank)
	}
	ef, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := tr.WriteEvents(ef); err == nil {
		err = ef.Close()
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}
