package main

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/simulate"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSummaryGolden pins the pipeline summary report format: a serial
// run over a fixed synthetic read set must render byte-identically to
// testdata/summary.golden. Regenerate with `go test -run Golden
// -update ./cmd/asmpipeline` after an intentional format change.
func TestSummaryGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  5000,
		Repeats: []simulate.RepeatFamily{{Length: 300, Copies: 6, Divergence: 0.02}},
	})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 200
	rc.LenSD = 30
	rc.VectorProb = 0
	frags := simulate.SampleWGS(rng, g, 3.0, rc, "r")

	cfg := core.DefaultConfig()
	cfg.PreprocessEnabled = false
	cfg.AssemblyWorkers = 1
	res, err := pipeline.Run(frags, pipeline.Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	summaryTable(len(frags), res, &buf)

	golden := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
