package main

import (
	"io"

	"repro/internal/core"
	"repro/internal/report"
)

// summaryTable renders the end-of-run pipeline summary. Split from
// main so the golden-file test can pin the report format.
func summaryTable(inputFrags int, res *core.Result, w io.Writer) {
	tb := report.NewTable("Pipeline summary", "metric", "value")
	tb.AddRow("input fragments", report.Int(int64(inputFrags)))
	tb.AddRow("fragments clustered", report.Int(int64(res.Store.N())))
	tb.AddRow("clusters", report.Int(int64(len(res.Clusters))))
	tb.AddRow("singletons", report.Int(int64(len(res.Singletons))))
	tb.AddRow("contigs", report.Int(int64(res.TotalContigs())))
	tb.AddRow("contigs per cluster", report.F2(res.ContigsPerCluster()))
	tb.AddRow("alignment savings", report.Pct(res.Clustering.Stats.SavingsFraction()))
	if q := res.Quarantined(); len(q) > 0 {
		tb.AddRow("quarantined clusters", report.Int(int64(len(q))))
	}
	tb.Fprint(w)
}
