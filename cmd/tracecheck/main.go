// Command tracecheck validates Chrome trace_event JSON files written
// by -trace-out: each file must parse, contain events, carry the
// required keys, and keep begin/end events balanced per track. It is
// the Makefile's cheap stand-in for loading the file in Perfetto.
//
// Usage:
//
//	tracecheck traces/fig5.trace.json traces/faults.trace.json
//
// Exits non-zero if any file fails validation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

type track struct{ pid, tid int }

// knownNames is the closed set of event names the obs exporter can
// produce (EvFault renders as "fault:<code>", matched by prefix). A
// name outside this set means the exporter and checker have drifted.
var knownNames = map[string]bool{
	// spans
	"send": true, "ssend": true, "recv": true,
	"gst": true, "cluster": true, "align-batch": true, "recover": true, "phase": true,
	// instants
	"pair-generated": true, "pair-aligned": true, "pair-discarded": true,
	"cluster-merge": true, "lease-grant": true, "lease-expire": true,
	"lease-adopt": true, "checkpoint": true,
	// fault-model instants
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

func nameKnown(name string) bool {
	return knownNames[name] || len(name) > 6 && name[:6] == "fault:"
}

// faultKinds are the reliability events; the summary counts them so a
// fault-injection run that traced nothing is visible at a glance.
var faultKinds = map[string]bool{
	"retransmit": true, "corrupt_frame": true, "retry": true, "quarantined": true,
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not trace_event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no events")
	}
	// depth[track][name] counts open spans; "E" must never underflow.
	depth := map[track]map[string]int{}
	ranks := map[track]bool{}
	spans, instants, faults := 0, 0, 0
	for i, e := range tf.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return fmt.Errorf("event %d: missing name or ph", i)
		}
		if e.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if !nameKnown(e.Name) {
			return fmt.Errorf("event %d: unknown event kind %q", i, e.Name)
		}
		if faultKinds[e.Name] {
			faults++
		}
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("event %d (%s %q): missing ts, pid or tid", i, e.Ph, e.Name)
		}
		k := track{*e.Pid, *e.Tid}
		ranks[k] = true
		switch e.Ph {
		case "B":
			if depth[k] == nil {
				depth[k] = map[string]int{}
			}
			depth[k][e.Name]++
			spans++
		case "E":
			if depth[k][e.Name] == 0 {
				return fmt.Errorf("event %d: unmatched E %q on pid=%d tid=%d", i, e.Name, k.pid, k.tid)
			}
			depth[k][e.Name]--
		case "i":
			instants++
		default:
			return fmt.Errorf("event %d: unexpected ph %q", i, e.Ph)
		}
	}
	open := 0
	for _, names := range depth {
		for _, d := range names {
			open += d
		}
	}
	fmt.Printf("%s: ok — %d events, %d tracks, %d spans, %d instants (%d fault-model), %d unclosed\n",
		path, len(tf.TraceEvents), len(ranks), spans, instants, faults, open)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
