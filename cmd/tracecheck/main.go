// Command tracecheck validates trace output.
//
// Default mode validates Chrome trace_event JSON files written by
// -trace-out: each file must parse, contain events, carry the
// required keys, and keep begin/end events balanced per track. It is
// the Makefile's cheap stand-in for loading the file in Perfetto.
//
//	tracecheck traces/fig5.trace.json traces/faults.trace.json
//
// With -events the arguments are raw events dumps (-events-out files)
// instead: all dumps are merged into one machine-wide trace — a
// multi-process transport run writes one dump per rank — and the
// causal invariants run across the merged streams (monotone modeled
// clocks, balanced spans, gap-free send sequences, exactly-once
// receive matching). A rank no dump covers, e.g. a SIGKILLed process,
// is treated as truncated and exempted, like a wrapped ring.
//
//	tracecheck -events ev.json.rank0 ev.json.rank1 ev.json.rank2
//
// The validation logic lives in internal/obs/check so the simulation
// harness and unit tests reuse it; this CLI only formats results.
// Exits non-zero if any file fails validation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/check"
)

func main() {
	events := flag.Bool("events", false, "arguments are raw events dumps: merge per-process files and run causal invariants across ranks")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>... | tracecheck -events <events.json>...")
		os.Exit(2)
	}
	if *events {
		checkEvents(flag.Args())
		return
	}
	failed := false
	for _, path := range flag.Args() {
		sum, err := check.File(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok — %s\n", path, sum)
	}
	if failed {
		os.Exit(1)
	}
}

func checkEvents(paths []string) {
	dumps := make([]*obs.Dump, 0, len(paths))
	for _, path := range paths {
		d, err := obs.ReadDumpFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		dumps = append(dumps, d)
	}
	merged, err := obs.MergeDumps(dumps...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	sum, err := check.Dump(merged, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: merged %d dump(s): %v\n", len(dumps), err)
		os.Exit(1)
	}
	fmt.Printf("merged %d dump(s): ok — %d ranks, %d events, %d channels, %d recvs (%d seq-matched), %d rank(s) truncated\n",
		len(dumps), sum.Ranks, sum.Events, sum.Channels, sum.RecvEvents, sum.SeqMatched, sum.Skipped)
}
