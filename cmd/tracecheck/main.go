// Command tracecheck validates Chrome trace_event JSON files written
// by -trace-out: each file must parse, contain events, carry the
// required keys, and keep begin/end events balanced per track. It is
// the Makefile's cheap stand-in for loading the file in Perfetto.
// The validation logic lives in internal/obs/check so the simulation
// harness and unit tests reuse it; this CLI only formats results.
//
// Usage:
//
//	tracecheck traces/fig5.trace.json traces/faults.trace.json
//
// Exits non-zero if any file fails validation.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs/check"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		sum, err := check.File(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok — %s\n", path, sum)
	}
	if failed {
		os.Exit(1)
	}
}
