// Command asmserve runs assembly-as-a-service: an HTTP job server
// with a crash-safe journal and a supervised worker pool. Submit a
// FASTA read set, poll the job, fetch the contigs:
//
//	asmserve -dir /var/lib/asm -addr :8080 &
//	curl -sS --data-binary @reads.fa 'http://localhost:8080/jobs?psi=20&w=10&ranks=4'
//	curl -sS http://localhost:8080/jobs/<id>
//	curl -sS http://localhost:8080/jobs/<id>/contigs > contigs.fa
//
// Kill the server at any point and restart it on the same -dir: the
// journal replays, in-flight jobs are re-adopted, and their workdirs
// resume from the last completed phase — the final contigs are
// byte-identical to an uninterrupted run. While a job runs, its
// status carries a collector URL that asmtop can attach to.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/backoff"
	"repro/internal/jobs"
	"repro/internal/launch"
)

func main() {
	// A process re-executed by the supervisor is a job runner, not a
	// server; it must branch before flag parsing.
	jobs.MaybeRunJob()

	var (
		dir      = flag.String("dir", "", "service data directory (journal + job workdirs; required)")
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		workers  = flag.Int("workers", 2, "supervised worker pool size")
		maxQueue = flag.Int("max-queue", 32, "max queued+running jobs before submissions get 429")
		retries  = flag.Int("max-attempts", 3, "charged attempts before a job is quarantined")
		deadline = flag.Duration("attempt-deadline", 10*time.Minute, "per-attempt wall-clock budget (SIGKILL past it)")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget for running jobs on shutdown")
		quota    = flag.Int64("quota-bytes", 0, "per-job workdir size cap in bytes (0 = unlimited)")
		minFree  = flag.Uint64("min-free-bytes", 0, "refuse submissions when data dir has less free space (0 = off)")
		retain   = flag.Duration("retain", 24*time.Hour, "how long finished jobs keep intermediate artifacts")
		gcEvery  = flag.Duration("gc-interval", time.Minute, "artifact GC sweep period")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "asmserve: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	srv, err := jobs.Open(jobs.Config{
		Dir:             *dir,
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		MaxAttempts:     *retries,
		AttemptDeadline: *deadline,
		DrainTimeout:    *drain,
		QuotaBytes:      *quota,
		MinFreeBytes:    *minFree,
		Retain:          *retain,
		GCInterval:      *gcEvery,
		Backoff:         backoff.Policy{Base: 500 * time.Millisecond, Cap: 30 * time.Second, Jitter: 0.2},
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("asmserve: %v", err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("asmserve: %v", err)
	}
	log.Printf("asmserve: listening on http://%s", bound)

	done := make(chan struct{})
	launch.OnSignal(func(sig os.Signal) {
		ctx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		close(done)
	})
	<-done
}
