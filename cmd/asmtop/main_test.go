package main

import (
	"strings"
	"testing"

	"repro/internal/obs/collector"
)

func TestRender(t *testing.T) {
	st := &collector.Status{
		Job: "asmnode", UptimeSec: 12.3,
		ExpectRanks: 4, SeenRanks: 4, Reports: 80, EventsTotal: 3000,
		Live: &collector.LiveAnalysis{
			MakespanSec: 1.5, CommSec: 0.2, CompSec: 0.9, IdleSec: 0.4,
			SlowestRank: 3, Unmatched: 5,
			Stragglers: []collector.StragglerNote{
				{Rank: 1, Phase: "pairgen", Sec: 0.8, MeanSec: 0.3, Imbalance: 2.67},
			},
		},
		Ranks: []collector.RankStatus{
			{Rank: 3, State: collector.StateAlive, PID: 42, LagMs: 120, Phase: "gst",
				Events: 900, MsgsSent: 10, BytesSent: 2 << 20, IdlePct: 31, TotalSec: 1},
			{Rank: 0, State: collector.StateAlive, PID: 41, LagMs: 90, Phase: "master",
				Events: 1200, IdlePct: 99, TotalSec: 1},
			{Rank: 2, State: collector.StateDead, LagMs: 9000, Phase: "gst",
				Events: 1, LeaseExpires: 2},
			{Rank: 1, State: collector.StateAlive, PID: 43, LagMs: 100, Phase: "pairgen",
				Events: 800, Straggler: true, IdlePct: 12, TotalSec: 1},
		},
	}
	var b strings.Builder
	render(&b, st)
	out := b.String()

	for _, want := range []string{
		"job asmnode",
		"ranks 4/4",
		"[running]",
		"unmatched 5",
		"straggler: rank 1 in pairgen",
		"STRAGGLER",
		"lease-exp=2",
		"dead",
		"10/2.0MB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Rows come out rank-sorted regardless of input order.
	last := -1
	for _, row := range []string{"\n   0  ", "\n   1  ", "\n   2  ", "\n   3  "} {
		idx := strings.Index(out, row)
		if idx < 0 || idx < last {
			t.Fatalf("ranks not sorted (row %q at %d, prev %d):\n%s", row, idx, last, out)
		}
		last = idx
	}
	// A rank that never reported has no PID and no idle share.
	deadRow := out[strings.Index(out, "\n   2  "):]
	deadRow = deadRow[:strings.Index(deadRow[1:], "\n")+1]
	if !strings.Contains(deadRow, "-") {
		t.Errorf("dead row should dash out unknown fields: %q", deadRow)
	}

	st.Complete = true
	st.ExitOK = true
	b.Reset()
	render(&b, st)
	if !strings.Contains(b.String(), "[complete ok]") {
		t.Errorf("complete-ok verdict missing:\n%s", b.String())
	}
	st.ExitOK = false
	b.Reset()
	render(&b, st)
	if !strings.Contains(b.String(), "[complete FAILED]") {
		t.Errorf("failed verdict missing:\n%s", b.String())
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1 << 10, "1.0KB"},
		{3 << 20, "3.0MB"},
		{5 << 30, "5.0GB"},
	}
	for _, c := range cases {
		if got := humanBytes(c.in); got != c.want {
			t.Errorf("humanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
