// Command asmtop is a live text dashboard for a running assembly job.
// It polls a run collector's /status endpoint (started with the
// -collector flag of asmnode, asmcluster or asmpipeline) and renders
// one row per rank: health state, heartbeat lag, current phase, event
// and traffic counters, and the idle share and straggler flag from the
// collector's incremental causal analysis.
//
// Usage:
//
//	asmtop http://127.0.0.1:9090
//	asmtop -registry /shared/reg        # discover the URL from the job's rendezvous directory
//	asmtop -once -plain http://...      # one snapshot, no screen clearing (scripts, logs)
//	asmtop -retry 30s http://...        # ride out transient collector outages with backoff
//
// asmtop exits 0 once the run reports complete with an OK verdict,
// 1 when it completes failed, and 2 when the collector cannot be
// reached before any status was observed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs/collector"
	"repro/internal/par/nettrans"
)

func main() {
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	plain := flag.Bool("plain", false, "append snapshots instead of redrawing the screen")
	polls := flag.Int("n", 0, "stop after this many polls (0 = until the run completes)")
	registry := flag.String("registry", "", "discover the collector URL from this rendezvous registry directory")
	discoverWait := flag.Duration("discover-wait", 5*time.Second, "how long to wait for the registry to name a collector")
	retry := flag.Duration("retry", 0, "keep retrying transient collector errors for this long (0 = fail fast)")
	flag.Parse()

	url := flag.Arg(0)
	if url == "" && *registry != "" {
		var err error
		url, err = nettrans.WaitService(*registry, "collector", 0, time.Now().Add(*discoverWait))
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmtop:", err)
			os.Exit(2)
		}
	}
	if url == "" {
		fmt.Fprintln(os.Stderr, "usage: asmtop [flags] http://collector-host:port  (or -registry DIR)")
		os.Exit(2)
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}

	client := &http.Client{Timeout: 5 * time.Second}
	// Transient-error policy: within the -retry window since the last
	// successful poll, connection errors back off and retry (the
	// collector may be restarting, or the job between attempts);
	// outside it they are terminal as before.
	pol := backoff.Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.2}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	lastOK := time.Now()
	failed := 0
	seen := false
	for n := 0; ; n++ {
		st, err := poll(client, url)
		if err != nil {
			if *retry > 0 && time.Since(lastOK) < *retry {
				fmt.Fprintf(os.Stderr, "asmtop: %v (retrying for %s)\n", err, (*retry - time.Since(lastOK)).Round(time.Second))
				time.Sleep(pol.Delay(failed, rng))
				failed++
				continue
			}
			if !seen {
				fmt.Fprintln(os.Stderr, "asmtop:", err)
				os.Exit(2)
			}
			// The collector went away after we saw it live — the job
			// process exited. Whatever we last rendered stands.
			fmt.Printf("collector gone (%v)\n", err)
			os.Exit(0)
		}
		seen = true
		failed = 0
		lastOK = time.Now()
		if !*plain && !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, st)
		if st.Complete {
			if st.ExitOK {
				os.Exit(0)
			}
			os.Exit(1)
		}
		if *once || (*polls > 0 && n+1 >= *polls) {
			return
		}
		time.Sleep(*interval)
	}
}

func poll(client *http.Client, url string) (*collector.Status, error) {
	resp, err := client.Get(url + "/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s/status returned %s", url, resp.Status)
	}
	var st collector.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decode /status: %w", err)
	}
	return &st, nil
}

// render draws one status snapshot. Split out from main so tests can
// feed it synthetic statuses.
func render(w io.Writer, st *collector.Status) {
	verdict := "running"
	if st.Complete {
		verdict = "complete ok"
		if !st.ExitOK {
			verdict = "complete FAILED"
		}
	}
	job := st.Job
	if job == "" {
		job = "?"
	}
	fmt.Fprintf(w, "asmtop — job %s  up %5.1fs  ranks %d/%d  reports %d  events %d  [%s]\n",
		job, st.UptimeSec, st.SeenRanks, st.ExpectRanks, st.Reports, st.EventsTotal, verdict)
	if lv := st.Live; lv != nil {
		fmt.Fprintf(w, "live: makespan %.2fs  comm %.2fs  comp %.2fs  idle %.2fs  slowest r%d",
			lv.MakespanSec, lv.CommSec, lv.CompSec, lv.IdleSec, lv.SlowestRank)
		if lv.Unmatched > 0 {
			fmt.Fprintf(w, "  unmatched %d", lv.Unmatched)
		}
		if lv.Error != "" {
			fmt.Fprintf(w, "  analysis error: %s", lv.Error)
		}
		fmt.Fprintln(w)
		for _, s := range lv.Stragglers {
			fmt.Fprintf(w, "straggler: rank %d in %s — %.2fs vs %.2fs mean (×%.2f)\n",
				s.Rank, s.Phase, s.Sec, s.MeanSec, s.Imbalance)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%4s  %-7s  %6s  %7s  %-14s  %7s  %14s  %14s  %5s  %5s  %-20s  %s\n",
		"RANK", "STATE", "PID", "LAG", "PHASE", "EVENTS", "SENT", "RECV", "IDLE%", "RETX", "RUNTIME", "FLAGS")
	ranks := append([]collector.RankStatus(nil), st.Ranks...)
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })
	for _, r := range ranks {
		lag := "-"
		if r.LagMs >= 0 {
			lag = fmt.Sprintf("%dms", r.LagMs)
		}
		phase := r.Phase
		if phase == "" {
			phase = "·"
		}
		var flags []string
		if r.Straggler {
			flags = append(flags, "STRAGGLER")
		}
		if r.Faults > 0 {
			flags = append(flags, fmt.Sprintf("faults=%d", r.Faults))
		}
		if r.Drops > 0 {
			flags = append(flags, fmt.Sprintf("drops=%d", r.Drops))
		}
		if r.LeaseExpires > 0 {
			flags = append(flags, fmt.Sprintf("lease-exp=%d", r.LeaseExpires))
		}
		if r.Checkpoints > 0 {
			flags = append(flags, fmt.Sprintf("ckpt=%d", r.Checkpoints))
		}
		if r.ExitReason != "" {
			flags = append(flags, r.ExitReason)
		}
		fmt.Fprintf(w, "%4d  %-7s  %6s  %7s  %-14s  %7d  %14s  %14s  %5s  %5d  %-20s  %s\n",
			r.Rank, r.State, orDash(r.PID), lag, phase, r.Events,
			traffic(r.MsgsSent, r.BytesSent), traffic(r.MsgsRecv, r.BytesRecv),
			pct(r.IdlePct, r.TotalSec > 0), r.Retransmits, runtimeCol(r), strings.Join(flags, " "))
	}
}

// runtimeCol renders the rank's runtime health gauges — GC pause p99,
// scheduler latency p99, live heap — shipped by a profiling session's
// runtime/metrics sampler. "-" when the run profiles nothing.
func runtimeCol(r collector.RankStatus) string {
	if r.GCPauseP99Ns == 0 && r.SchedLatP99Ns == 0 && r.HeapLiveBytes == 0 {
		return "-"
	}
	return fmt.Sprintf("gc%s sch%s %s",
		humanNanos(r.GCPauseP99Ns), humanNanos(r.SchedLatP99Ns), humanBytes(r.HeapLiveBytes))
}

func humanNanos(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.0fms", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.0fµs", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dns", n)
	}
}

func orDash(pid int) string {
	if pid == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", pid)
}

func pct(v float64, known bool) string {
	if !known {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v) // IdlePct is already 0–100
}

// traffic renders "messages/bytes" compactly (e.g. "412/1.3MB").
func traffic(msgs, bytes int64) string {
	return fmt.Sprintf("%d/%s", msgs, humanBytes(bytes))
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
