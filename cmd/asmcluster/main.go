// Command asmcluster runs the parallel clustering phase on a FASTA
// read file and writes the cluster assignment.
//
// Usage:
//
//	asmcluster -in reads.fa -ranks 8 -psi 20 -w 10 -out clusters.tsv
//
// With -ranks 1 clustering runs serially; otherwise on a simulated
// p-rank master–worker machine. The output TSV has one line per
// fragment: name, cluster label (smallest member index of its
// cluster).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/collector"
	"repro/internal/obs/prof"
	"repro/internal/par"
	"repro/internal/report"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "clusters.tsv", "output cluster assignment TSV")
	ranks := flag.Int("ranks", 1, "simulated ranks (1 = serial)")
	psi := flag.Int("psi", 20, "minimum maximal-match length ψ")
	w := flag.Int("w", 10, "GST bucket prefix length (≤ ψ)")
	minOverlap := flag.Int("minoverlap", 40, "minimum overlap length")
	minIdentity := flag.Float64("minidentity", 0.90, "minimum overlap identity")
	storeBackend := flag.String("store", "mem", "sequence-store backend: mem (all-RAM) or disk (out-of-core 2-bit packed store in a temp dir)")
	memBudget := flag.Int64("mem-budget", 0, "spilling GST byte budget; 0 builds the full forest in memory")
	faults := flag.String("faults", "", "fault injection spec, e.g. crash=2@5,drop=0.01,seed=7 (see cluster.ParseFaults)")
	lease := flag.Duration("lease", 250*time.Millisecond, "master lease timeout for fault runs")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace, /analyze and /debug/pprof on this host:port while running")
	traceOut := flag.String("trace-out", "", "write a Chrome trace JSON of the run to this file (load in ui.perfetto.dev)")
	eventsOut := flag.String("events-out", "", "write the raw events dump to this file (input for traceanalyze)")
	transport := flag.String("transport", "inproc", "run parallel ranks as: inproc goroutines, or tcp / unix OS processes")
	collectorAddr := flag.String("collector", "", "run a live telemetry collector on this host:port; every rank streams health, metrics and trace deltas to it (poll with asmtop)")
	collectorLinger := flag.Duration("collector-linger", 2*time.Second, "keep the collector serving this long after the run completes so pollers observe the final state")
	profDir := flag.String("prof-dir", "", "capture a phase/rank-labeled CPU profile plus heap/alloc snapshots into this directory (asmprof reads them)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Multi-process transport: the job root becomes rank 0 and forks
	// the workers; a re-executed child finds its rank in the
	// environment, clusters, and exits without writing output.
	rank := 0
	registry, epoch := "", uint64(0)
	colURL := ""
	var colSrv *obs.Server
	var fleet *launch.Fleet
	var trans par.Transport
	switch *transport {
	case "inproc":
	case "tcp", "unix":
		if *ranks < 2 {
			fmt.Fprintln(os.Stderr, "asmcluster: -transport", *transport, "requires -ranks ≥ 2")
			os.Exit(2)
		}
		if *faults != "" {
			fmt.Fprintln(os.Stderr, "asmcluster: -faults is for the simulated in-process machine; use real process kills instead")
			os.Exit(2)
		}
		child, isChild, err := launch.FromEnv()
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		if isChild {
			rank, registry, epoch = child.Rank, child.Registry, child.Epoch
			// The parent decides per-rank observability: children listen
			// on the ephemeral address it forwarded (or not at all) and
			// stream to the collector it started.
			*obsAddr = child.ObsAddr
			colURL = child.Collector
		} else {
			if registry, err = os.MkdirTemp("", "asmcluster-registry-"); err != nil {
				fmt.Fprintln(os.Stderr, "asmcluster:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(registry)
			epoch = launch.Epoch()
			if *collectorAddr != "" {
				_, colSrv, colURL, err = launch.StartCollector(collector.Config{Ranks: *ranks, Job: "asmcluster"}, *collectorAddr, registry, epoch)
				if err != nil {
					fmt.Fprintln(os.Stderr, "asmcluster:", err)
					os.Exit(1)
				}
				defer func() { time.Sleep(*collectorLinger); colSrv.Close() }()
				fmt.Printf("collector on %s (/status /ranks /healthz /readyz /analyze/live /events)\n", colURL)
			}
			childObs := ""
			if *obsAddr != "" {
				childObs = "127.0.0.1:0" // per-rank ephemeral server, address published to the registry
			}
			tel := launch.Telemetry{ObsAddr: childObs, Collector: colURL}
			if fleet, err = launch.Spawn(*ranks, *transport, registry, epoch, tel); err != nil {
				fmt.Fprintln(os.Stderr, "asmcluster:", err)
				os.Exit(1)
			}
			defer fleet.Wait()
		}
		if trans, err = launch.NewTransport(rank, *ranks, *transport, registry, epoch, 0); err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		defer trans.Close()
	default:
		fmt.Fprintln(os.Stderr, "asmcluster: unknown -transport", *transport, "(inproc, tcp, unix)")
		os.Exit(2)
	}

	if *collectorAddr != "" && trans == nil {
		// In-process machine: one collector, one reporter covering all
		// ranks (the single tracer spans the whole run).
		var err error
		_, colSrv, colURL, err = launch.StartCollector(collector.Config{Ranks: *ranks, Job: "asmcluster"}, *collectorAddr, "", 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		defer func() { time.Sleep(*collectorLinger); colSrv.Close() }()
		fmt.Printf("collector on %s (/status /ranks /healthz /readyz /analyze/live /events)\n", colURL)
	}

	var tr *obs.Tracer
	var reg *obs.Registry
	if *obsAddr != "" || *traceOut != "" || *eventsOut != "" || colURL != "" {
		tr = obs.NewTracer(*ranks, obs.DefaultRingCap)
		reg = obs.NewRegistry()
	}
	if *obsAddr != "" {
		srv, err := launch.ServeRankObs(*obsAddr, rank, reg, tr, registry, epoch, analyze.Endpoint(tr))
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		defer srv.Close()
		if rank == 0 {
			fmt.Printf("observability server on http://%s (/metrics /trace /timeline /analyze /debug/pprof)\n", srv.Addr)
		}
	}
	var rep *collector.Reporter
	if colURL != "" {
		covers := []int{rank}
		if trans == nil {
			covers = launch.AllRanks(*ranks)
		}
		rep = collector.StartReporter(collector.ReporterConfig{
			URL: colURL, Rank: rank, Covers: covers, Job: "asmcluster",
			Tracer: tr, Registry: reg,
		})
	}

	// Graceful interrupt: flush whatever telemetry exists (trace and
	// events dumps, reporter final flush with an "interrupted" verdict),
	// stop spawned worker ranks, and drain the collector before exiting.
	launch.OnSignal(func(sig os.Signal) {
		var dump *obs.Dump
		if tr != nil {
			dump = tr.Dump()
		}
		rep.Close(dump, false, "interrupted: "+sig.String())
		if dump != nil && *eventsOut != "" {
			if ef, err := os.Create(*eventsOut + ".interrupted"); err == nil {
				dump.WriteJSON(ef)
				ef.Close()
			}
		}
		if tr != nil && *traceOut != "" {
			if tf, err := os.Create(*traceOut + ".interrupted"); err == nil {
				tr.WriteChromeTrace(tf)
				tf.Close()
			}
		}
		if fleet != nil {
			fleet.KillAll()
		}
		if colSrv != nil {
			colSrv.Close()
		}
	})

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmcluster:", err)
		os.Exit(1)
	}
	frags, err := repro.ReadFASTA(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmcluster:", err)
		os.Exit(1)
	}

	store, closeStore, err := core.OpenStore(frags, core.StoreConfig{Backend: *storeBackend})
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmcluster:", err)
		os.Exit(2)
	}
	if closeStore != nil {
		defer closeStore()
	}
	cfg := cluster.DefaultConfig()
	cfg.Psi = *psi
	cfg.W = *w
	cfg.Criteria.MinOverlap = *minOverlap
	cfg.Criteria.MinIdentity = *minIdentity
	cfg.MemBudget = *memBudget

	var profSess *prof.Session
	if *profDir != "" {
		// PID-unique stems keep multi-process ranks from clobbering
		// each other in a shared -prof-dir.
		profSess, err = prof.Start(prof.Config{
			Dir:      *profDir,
			Name:     fmt.Sprintf("rank%d-p%d", rank, os.Getpid()),
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster: profiling disabled:", err)
		}
	}
	stopProf := func() {
		if profSess == nil {
			return
		}
		arts, perr := profSess.Stop()
		profSess = nil
		if perr != nil {
			fmt.Fprintln(os.Stderr, "asmcluster: profile stop:", perr)
		} else if rank == 0 {
			fmt.Printf("profile artifacts: %s (asmprof %s)\n", arts.CPU, *profDir)
		}
	}

	var res *cluster.Result
	if *ranks >= 2 {
		pcfg := cluster.DefaultParallelConfig(*ranks)
		pcfg.Trace = tr
		pcfg.Metrics = reg
		if *faults != "" {
			plan, err := cluster.ParseFaults(*faults)
			if err != nil {
				fmt.Fprintln(os.Stderr, "asmcluster:", err)
				os.Exit(2)
			}
			pcfg.Faults = plan
			pcfg.LeaseTimeout = *lease
		}
		var perr error
		if trans != nil {
			pcfg.FT = true // real processes genuinely die
			res, _, _, perr = cluster.ParallelRank(store, cfg, pcfg, rank, trans)
		} else {
			res, _, perr = cluster.Parallel(store, cfg, pcfg)
		}
		if perr != nil {
			stopProf()
			rep.Close(nil, false, perr.Error())
			fmt.Fprintln(os.Stderr, "asmcluster:", perr)
			os.Exit(1)
		}
	} else {
		if *faults != "" {
			fmt.Fprintln(os.Stderr, "asmcluster: -faults ignored with -ranks 1 (serial run)")
		}
		res = cluster.Serial(store, cfg)
	}
	stopProf()

	if trans != nil && *eventsOut != "" {
		// One dump per OS process; merge with tracecheck -events.
		*eventsOut = fmt.Sprintf("%s.rank%d", *eventsOut, rank)
	}
	// One tracer snapshot shared by the events file and the reporter's
	// final flush, so the collector's merged trace is byte-identical to
	// merging the dump files.
	var dump *obs.Dump
	if tr != nil {
		dump = tr.Dump()
	}
	if rank != 0 {
		// Worker-rank process: the master owns every output file
		// except this rank's own events dump.
		if *eventsOut != "" {
			ef, err := os.Create(*eventsOut)
			if err == nil {
				if err = dump.WriteJSON(ef); err == nil {
					err = ef.Close()
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "asmcluster:", err)
				os.Exit(1)
			}
		}
		rep.Close(dump, true, "")
		return
	}

	sum := res.Summarize()
	tb := report.NewTable("Clustering summary", "metric", "value")
	tb.AddRow("fragments", report.Int(int64(store.N())))
	tb.AddRow("multi-fragment clusters", report.Int(int64(sum.NumClusters)))
	tb.AddRow("singletons", report.Int(int64(sum.NumSingletons)))
	tb.AddRow("mean cluster size", report.F2(sum.MeanSize))
	tb.AddRow("largest cluster", report.Int(int64(sum.MaxSize)))
	tb.AddRow("pairs generated", report.Int(res.Stats.Generated))
	tb.AddRow("pairs aligned", report.Int(res.Stats.Aligned))
	tb.AddRow("alignment savings", report.Pct(res.Stats.SavingsFraction()))
	if *faults != "" {
		tb.AddRow("workers lost", report.Int(res.Stats.WorkersLost))
		tb.AddRow("pairs requeued", report.Int(res.Stats.Requeued))
	}
	tb.Fprint(os.Stdout)

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asmcluster:", err)
		os.Exit(1)
	}
	defer of.Close()
	bw := bufio.NewWriter(of)
	defer bw.Flush()
	labels := make([]int, store.N())
	for _, g := range res.UF.Groups() {
		for _, fid := range g {
			labels[fid] = g[0]
		}
	}
	for i := 0; i < store.N(); i++ {
		fmt.Fprintf(bw, "%s\t%d\n", store.FragName(i), labels[i])
	}
	fmt.Printf("wrote %s\n", *out)

	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(tf); err == nil {
			err = tf.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
	if *eventsOut != "" {
		ef, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		if err := dump.WriteJSON(ef); err == nil {
			err = ef.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmcluster:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *eventsOut)
	}
	rep.Close(dump, true, "")
}
