// Command experiments regenerates the paper's tables and figures on
// scaled synthetic workloads.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig5,table1 -scale 500000 -ranks 4,8,16,32,64
//
// Experiments: fig5, fig9, table1, table2, table3, maize, validate,
// masking, filter, comm, granularity, faults, pipelinefaults, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiments (fig5,fig9,table1,table2,table3,maize,validate,masking,filter,comm,granularity,faults,pipelinefaults,all)")
	scale := flag.Int("scale", 250000, "base read volume in bases (the paper's 250 Mbp point)")
	ranks := flag.String("ranks", "4,8,16,32", "comma-separated simulated rank sweep")
	seed := flag.Int64("seed", 20060425, "random seed")
	quick := flag.Bool("quick", false, "shrink sweeps to CI-sized runs")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this host:port while running")
	traceOut := flag.String("trace-out", "", "directory receiving one Chrome trace JSON per experiment (load in ui.perfetto.dev)")
	flag.Parse()

	var rankList []int
	for _, s := range strings.Split(*ranks, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad rank %q\n", s)
			os.Exit(2)
		}
		rankList = append(rankList, v)
	}
	opt := experiments.Options{
		Scale: *scale,
		Ranks: rankList,
		Seed:  *seed,
		Out:   os.Stdout,
		Quick: *quick,
	}

	var tr *obs.Tracer
	if *obsAddr != "" || *traceOut != "" {
		maxRank := rankList[0]
		for _, r := range rankList {
			if r > maxRank {
				maxRank = r
			}
		}
		tr = obs.NewTracer(maxRank+1, obs.DefaultRingCap)
		opt.Trace = tr
		opt.Metrics = obs.NewRegistry()
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, opt.Metrics, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics /trace /timeline /debug/pprof)\n\n", srv.Addr)
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	known := map[string]func(experiments.Options){
		"fig5":           func(o experiments.Options) { experiments.Fig5(o) },
		"fig9":           func(o experiments.Options) { experiments.Fig9(o) },
		"table1":         func(o experiments.Options) { experiments.Table1(o) },
		"table2":         func(o experiments.Options) { experiments.Table2(o) },
		"table3":         func(o experiments.Options) { experiments.Table3(o) },
		"maize":          func(o experiments.Options) { experiments.Maize(o) },
		"validate":       func(o experiments.Options) { experiments.Validation(o) },
		"masking":        func(o experiments.Options) { experiments.Masking(o) },
		"filter":         func(o experiments.Options) { experiments.Filter(o) },
		"comm":           func(o experiments.Options) { experiments.Comm(o) },
		"granularity":    func(o experiments.Options) { experiments.Granularity(o) },
		"faults":         func(o experiments.Options) { experiments.FaultSweep(o) },
		"pipelinefaults": func(o experiments.Options) { experiments.PipelineFaults(o) },
	}
	order := []string{"fig5", "fig9", "table1", "table2", "table3", "maize", "validate", "masking", "filter", "comm", "granularity", "faults", "pipelinefaults"}

	var selected []string
	if *runList == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			if _, ok := known[name]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		fmt.Printf("## %s\n\n", name)
		known[name](opt)
		if *traceOut != "" && tr.TotalEvents() > 0 {
			path := filepath.Join(*traceOut, name+".trace.json")
			if err := writeTrace(tr, path); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %s\n\n", path)
			tr.Reset() // one experiment per trace file
		}
	}
}

func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
