// Command asmnode runs one rank of the parallel clustering engine as
// its own OS process, with ranks wired together over fault-tolerant
// TCP or Unix-domain sockets instead of in-process channels.
//
// Spawn mode forks the whole machine from one invocation — this
// process becomes rank 0 (the master) and re-executes itself once per
// worker rank:
//
//	asmnode -in reads.fa -size 4 -transport tcp -spawn -out clusters.tsv
//
// Manual mode launches each rank by hand (possibly on different
// machines for tcp), rendezvousing through a shared registry
// directory or a static -peers list:
//
//	asmnode -in reads.fa -size 4 -rank 2 -registry /shared/reg
//	asmnode -in reads.fa -size 4 -rank 1 -peers ,host1:9001,host2:9002,host3:9003 -listen :9001
//
// Every rank loads the same input and parameters (deterministic, so
// nothing is shipped over the wire); rank 0 alone writes the cluster
// assignment. Transport runs always use the fault-tolerant lease
// protocol: a SIGKILLed worker is detected by heartbeat timeout and
// its work is re-executed, and -kill-rank/-kill-after inject exactly
// that failure for conformance testing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/launch"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/collector"
	"repro/internal/par/nettrans"
	"repro/internal/report"
)

func fatal(a ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"asmnode:"}, a...)...)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "clusters.tsv", "output cluster assignment TSV (rank 0 only)")
	size := flag.Int("size", 2, "total ranks in the machine")
	rank := flag.Int("rank", 0, "this process's rank (manual mode)")
	network := flag.String("transport", "tcp", "socket transport: tcp or unix")
	spawn := flag.Bool("spawn", false, "fork all worker ranks from this process (which becomes rank 0)")
	registry := flag.String("registry", "", "shared rendezvous directory (spawn mode creates one)")
	peers := flag.String("peers", "", "comma-separated peer addresses, index = rank (alternative to -registry)")
	listen := flag.String("listen", "", "listen address for this rank (default: ephemeral)")
	epoch := flag.Uint64("epoch", 1, "job epoch guarding against stale incarnations")
	liveness := flag.Duration("liveness", 0, "declare a silent peer dead after this long (0 = transport default)")
	lease := flag.Duration("lease", 250*time.Millisecond, "master lease timeout for re-executing lost work")
	psi := flag.Int("psi", 20, "minimum maximal-match length ψ")
	w := flag.Int("w", 10, "GST bucket prefix length (≤ ψ)")
	minOverlap := flag.Int("minoverlap", 40, "minimum overlap length")
	minIdentity := flag.Float64("minidentity", 0.90, "minimum overlap identity")
	killRank := flag.Int("kill-rank", 0, "spawn mode: SIGKILL this worker rank mid-run (0 disables)")
	killAfter := flag.Duration("kill-after", 200*time.Millisecond, "spawn mode: delay before -kill-rank fires")
	eventsOut := flag.String("events-out", "", "write this rank's events dump to FILE.rank<r> (merge with tracecheck -events)")
	obsAddr := flag.String("obs-addr", "", "serve this rank's /metrics, /trace, /analyze and /debug/pprof on this host:port; spawn mode gives every child an ephemeral server published to the registry")
	traceOut := flag.String("trace-out", "", "write this rank's Chrome trace JSON to FILE.rank<r> (load in ui.perfetto.dev)")
	collectorAddr := flag.String("collector", "", "live telemetry collector: a host:port to serve on (spawn mode), or an http:// URL of a running collector to stream to (manual mode)")
	collectorLinger := flag.Duration("collector-linger", 2*time.Second, "keep the collector serving this long after the run completes so pollers observe the final state")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	// A child re-executed by -spawn finds its identity in the
	// environment and ignores the rank/rendezvous flags it inherited.
	child, isChild, err := launch.FromEnv()
	if isChild {
		*rank = child.Rank
		*size = child.Size
		*network = child.Network
		*registry = child.Registry
		*epoch = child.Epoch
		*spawn = false
		*obsAddr = child.ObsAddr
		*collectorAddr = child.Collector
	} else if err != nil {
		fatal(err)
	}

	// Resolve the collector URL this rank streams to: an http:// value
	// is a running collector (manual mode / forwarded by the parent);
	// anything else is a listen address the spawn parent serves on.
	colURL := ""
	if strings.HasPrefix(*collectorAddr, "http://") || strings.HasPrefix(*collectorAddr, "https://") {
		colURL = *collectorAddr
	} else if *collectorAddr != "" && !*spawn {
		fatal("-collector", *collectorAddr, "is a listen address; that needs -spawn (manual ranks take the collector's http:// URL)")
	}

	var fleet *launch.Fleet
	if *spawn {
		*rank = 0
		if *registry == "" {
			dir, err := os.MkdirTemp("", "asmnode-registry-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			*registry = dir
		}
		*epoch = launch.Epoch()
		if *collectorAddr != "" && colURL == "" {
			var colSrv *obs.Server
			_, colSrv, colURL, err = launch.StartCollector(collector.Config{Ranks: *size, Job: "asmnode"}, *collectorAddr, *registry, *epoch)
			if err != nil {
				fatal(err)
			}
			defer func() { time.Sleep(*collectorLinger); colSrv.Close() }()
			fmt.Printf("collector on %s (/status /ranks /healthz /readyz /analyze/live /events)\n", colURL)
		}
		childObs := ""
		if *obsAddr != "" {
			childObs = "127.0.0.1:0" // per-rank ephemeral server, address published to the registry
		}
		tel := launch.Telemetry{ObsAddr: childObs, Collector: colURL}
		if fleet, err = launch.Spawn(*size, *network, *registry, *epoch, tel); err != nil {
			fatal(err)
		}
		defer fleet.Wait()
		if *killRank > 0 {
			if *killRank >= *size {
				fatal(fmt.Sprintf("-kill-rank %d out of range for size %d", *killRank, *size))
			}
			f, r := fleet, *killRank
			time.AfterFunc(*killAfter, func() {
				fmt.Fprintf(os.Stderr, "asmnode: injecting SIGKILL into rank %d\n", r)
				_ = f.Kill(r)
			})
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	frags, err := repro.ReadFASTA(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	store := repro.NewStore(frags)

	cfg := cluster.DefaultConfig()
	cfg.Psi = *psi
	cfg.W = *w
	cfg.Criteria.MinOverlap = *minOverlap
	cfg.Criteria.MinIdentity = *minIdentity

	pcfg := cluster.DefaultParallelConfig(*size)
	pcfg.FT = true // real processes genuinely die
	pcfg.LeaseTimeout = *lease
	tr := obs.NewTracer(*size, obs.DefaultRingCap)
	reg := obs.NewRegistry()
	pcfg.Trace = tr
	pcfg.Metrics = reg

	if *obsAddr != "" {
		srv, err := launch.ServeRankObs(*obsAddr, *rank, reg, tr, *registry, *epoch, analyze.Endpoint(tr))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "asmnode: rank %d observability server on http://%s\n", *rank, srv.Addr)
	}
	var rep *collector.Reporter
	if colURL != "" {
		rep = collector.StartReporter(collector.ReporterConfig{
			URL: colURL, Rank: *rank, Job: "asmnode",
			Tracer: tr, Registry: reg,
		})
	}

	// Graceful interrupt: flush this rank's dumps and deliver the
	// reporter's final report with an "interrupted" verdict; the spawn
	// parent also takes its worker ranks down with it.
	launch.OnSignal(func(sig os.Signal) {
		dump := tr.Dump()
		rep.Close(dump, false, "interrupted: "+sig.String())
		if *eventsOut != "" {
			if ef, err := os.Create(fmt.Sprintf("%s.rank%d.interrupted", *eventsOut, *rank)); err == nil {
				dump.WriteJSON(ef)
				ef.Close()
			}
		}
		if *traceOut != "" {
			if tf, err := os.Create(fmt.Sprintf("%s.rank%d.interrupted", *traceOut, *rank)); err == nil {
				tr.WriteChromeTrace(tf)
				tf.Close()
			}
		}
		if fleet != nil {
			fleet.KillAll()
		}
	})

	t, err := buildTransport(*rank, *size, *network, *registry, *peers, *listen, *epoch, *liveness)
	if err != nil {
		rep.Close(nil, false, err.Error())
		fatal(err)
	}
	res, _, exit, err := cluster.ParallelRank(store, cfg, pcfg, *rank, t)
	if cerr := t.Close(); cerr != nil && err == nil {
		fmt.Fprintln(os.Stderr, "asmnode: transport close:", cerr)
	}
	if err != nil {
		rep.Close(nil, false, err.Error())
		fatal(err)
	}

	// One tracer snapshot shared by the events file and the reporter's
	// final flush, so the collector's merged trace is byte-identical to
	// merging the per-rank dump files.
	dump := tr.Dump()
	if *eventsOut != "" {
		path := fmt.Sprintf("%s.rank%d", *eventsOut, *rank)
		ef, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := dump.WriteJSON(ef); err == nil {
			err = ef.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "asmnode: rank %d wrote %s\n", *rank, path)
	}
	if *traceOut != "" {
		path := fmt.Sprintf("%s.rank%d", *traceOut, *rank)
		tf, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChromeTrace(tf); err == nil {
			err = tf.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "asmnode: rank %d wrote %s\n", *rank, path)
	}
	rep.Close(dump, exit.OK, exit.Reason)

	if *rank != 0 {
		if !exit.OK {
			fatal(fmt.Sprintf("rank %d died: %s", *rank, exit.Reason))
		}
		return
	}

	sum := res.Summarize()
	tb := report.NewTable("Clustering summary", "metric", "value")
	tb.AddRow("ranks (OS processes)", report.Int(int64(*size)))
	tb.AddRow("transport", *network)
	tb.AddRow("fragments", report.Int(int64(store.N())))
	tb.AddRow("multi-fragment clusters", report.Int(int64(sum.NumClusters)))
	tb.AddRow("singletons", report.Int(int64(sum.NumSingletons)))
	tb.AddRow("pairs generated", report.Int(res.Stats.Generated))
	tb.AddRow("pairs aligned", report.Int(res.Stats.Aligned))
	tb.AddRow("workers lost", report.Int(res.Stats.WorkersLost))
	tb.AddRow("pairs requeued", report.Int(res.Stats.Requeued))
	tb.Fprint(os.Stdout)

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriter(of)
	labels := make([]int, store.N())
	for _, g := range res.UF.Groups() {
		for _, fid := range g {
			labels[fid] = g[0]
		}
	}
	for i := 0; i < store.N(); i++ {
		fmt.Fprintf(bw, "%s\t%d\n", store.FragName(i), labels[i])
	}
	if err := bw.Flush(); err == nil {
		err = of.Close()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// buildTransport wires this rank's socket endpoint from either a
// static peer list or the registry directory.
func buildTransport(rank, size int, network, registry, peers, listen string, epoch uint64, liveness time.Duration) (*nettrans.Transport, error) {
	var plist []string
	if peers != "" {
		plist = strings.Split(peers, ",")
		if len(plist) != size {
			return nil, fmt.Errorf("-peers names %d ranks, -size is %d", len(plist), size)
		}
	}
	if plist == nil && registry == "" {
		return nil, fmt.Errorf("need -registry or a full -peers list (or -spawn)")
	}
	cfg := nettrans.Config{
		Rank:        rank,
		Size:        size,
		Network:     network,
		Listen:      listen,
		Peers:       plist,
		RegistryDir: registry,
		Epoch:       epoch,
	}
	if liveness > 0 {
		cfg.Liveness = liveness
	}
	return nettrans.New(cfg)
}
