// benchrun runs the continuous-benchmark workloads (see
// internal/bench) and either records a baseline or checks the
// current build against one.
//
//	benchrun -workload cluster -out BENCH_cluster.json     # record
//	benchrun -workload cluster -check BENCH_cluster.json   # gate
//
// -slowdown multiplies every modeled compute charge; -slowdown 2
// against a natural baseline demonstrates the regression gate firing.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	bench.MaybeRunOOCCell()
	workload := flag.String("workload", "cluster", "benchmark workload: cluster, transport, pipeline or outofcore")
	ranks := flag.Int("ranks", 8, "simulated machine size")
	iters := flag.Int("iters", 3, "timed iterations (fastest wins)")
	out := flag.String("out", "", "write the measurement as a baseline file")
	check := flag.String("check", "", "compare against this baseline file; exit 1 on regression")
	slowdown := flag.Float64("slowdown", 1, "multiply modeled compute charges (inject a slowdown)")
	withCollector := flag.Bool("collector", false, "stream telemetry to a live collector while measuring (prove the overhead is under the gates)")
	profileDir := flag.String("profile-dir", "", "also run one un-timed profiled iteration, writing labeled .pb.gz artifacts and events.json here")
	profileOut := flag.String("profile-out", "", "write the profiled iteration's attribution report to this file (implies a temp -profile-dir when unset)")
	profileOverhead := flag.Bool("profile-overhead", false, "measure the profiling tax (off vs on, fastest of each) and gate it at 5%")
	flag.Parse()

	if *workload == "outofcore" {
		runOutOfCore(*out, *check)
		return
	}

	cfg := bench.Config{Ranks: *ranks, Iters: *iters, Slowdown: *slowdown, Collector: *withCollector}

	if *profileOverhead {
		runProfileOverhead(*workload, cfg)
		return
	}

	m, err := bench.Run(*workload, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ranks, %d iters\n", m.Workload, m.Ranks, m.Iters)
	fmt.Printf("  ns/op           %d\n", m.NsPerOp)
	fmt.Printf("  allocs/op       %d\n", m.AllocsPerOp)
	fmt.Printf("  peak RSS        %d bytes\n", m.PeakRSSBytes)
	fmt.Printf("  critical path   %.6fs (raw makespan %.6fs)\n", m.CriticalPathSec, m.RawMakespanSec)
	fmt.Printf("  comm/comp/idle  %.6fs / %.6fs / %.6fs (ratio %.3f)\n",
		m.CommSec, m.CompSec, m.IdleSec, m.CommCompRatio)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		if err := bench.WriteBaseline(f, *m); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote baseline %s\n", *out)
	}

	if *check != "" {
		b, err := bench.ReadBaselineFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		var base *bench.Metrics
		for i := range b.Workload {
			if b.Workload[i].Workload == m.Workload {
				base = &b.Workload[i]
			}
		}
		if base == nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s has no %q baseline\n", *check, m.Workload)
			os.Exit(1)
		}
		if regs := bench.Compare(base, m); len(regs) > 0 {
			fmt.Println("REGRESSIONS:")
			for _, r := range regs {
				fmt.Println(" ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s (gates: %v)\n", *check, bench.Gates())
	}

	if *profileDir != "" || *profileOut != "" {
		runProfileCapture(*workload, cfg, *profileDir, *profileOut)
	}
}

// runProfileCapture runs the extra un-timed profiled iteration and
// renders its attribution report (to profileOut when set, stdout
// otherwise).
func runProfileCapture(workload string, cfg bench.Config, dir, outPath string) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "benchrun-prof-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	rep, arts, err := bench.RunProfile(workload, cfg, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Printf("profiled iteration: artifacts in %s (%s)\n", dir, arts.CPU)
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	if outPath != "" {
		fmt.Printf("wrote attribution report %s\n", outPath)
	}
}

// profOverheadFrac and profOverheadSlack gate the profiling tax: the
// profiled iteration may be at most 5% slower than the unprofiled
// one, plus a fixed slack absorbing timer noise on sub-second
// workloads. Both runs happen in this process back to back, so the
// comparison is against the same machine state, not a committed
// cross-machine baseline.
const (
	profOverheadFrac  = 0.05
	profOverheadSlack = 50_000_000 // 50ms
)

func runProfileOverhead(workload string, cfg bench.Config) {
	ov, err := bench.ProfileOverhead(workload, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: profiling off %dns, on %dns (%+.2f%%)\n", ov.Workload, ov.OffNs, ov.OnNs, ov.Pct())
	limit := int64(float64(ov.OffNs)*(1+profOverheadFrac)) + profOverheadSlack
	if ov.OnNs > limit {
		fmt.Fprintf(os.Stderr, "benchrun: profiling overhead %dns exceeds %dns (off +%.0f%% +%dms slack)\n",
			ov.OnNs, limit, profOverheadFrac*100, profOverheadSlack/1_000_000)
		os.Exit(1)
	}
	fmt.Printf("profiling overhead within %.0f%% gate\n", profOverheadFrac*100)
}

// runOutOfCore handles the memory-scaling workload, which measures
// peak-RSS ratios across subprocess cells rather than per-op timings.
func runOutOfCore(out, check string) {
	m, err := bench.RunOutOfCore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
	fmt.Println("outofcore: 4 cells (mem/disk × scale 1/10)")
	for _, c := range m.Cells {
		fmt.Printf("  %-4s ×%-2d  peak RSS %10d bytes  %d pairs\n", c.Backend, c.Scale, c.PeakRSSBytes, c.Pairs)
	}
	fmt.Printf("  disk ratio %.3f (flat gate %.3f)  mem ratio %.3f (growth floor %.3f)\n",
		m.DiskRatio, m.FlatGate, m.MemRatio, m.GrowthFloor)

	if out != "" {
		if err := bench.WriteOOCBaseline(out, m); err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote baseline %s\n", out)
	}
	if check != "" {
		base, err := bench.ReadOOCBaseline(check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		if regs := bench.CompareOOC(base, m); len(regs) > 0 {
			fmt.Println("REGRESSIONS:")
			for _, r := range regs {
				fmt.Println(" ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s\n", check)
	}
}
