package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each delegating to the corresponding experiment in
// internal/experiments and reporting its headline quantities as custom
// metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times are modeled (α + n/β communication, analytic compute
// charges calibrated to BlueGene/L-class nodes); the quantities to
// compare against the paper are the shapes — scaling slopes, savings
// percentages, cluster statistics — recorded in EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/experiments"
)

// benchOpts sizes the benchmarks: a 120 kbp base input and a 4–32 rank
// sweep (the paper's quadrupling steps, 32× down from 256–1024). The
// cmd/experiments tool runs the same experiments at its default
// 250 kbp scale — those larger runs are the numbers EXPERIMENTS.md
// records; the bench harness trades a notch of scale for wall time.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 120000,
		Ranks: []int{4, 8, 16, 32},
		Seed:  20060425,
	}
}

// BenchmarkFig5GSTConstruction reproduces Fig. 5: parallel generalized
// suffix tree construction time and its communication/computation
// split for two input sizes across the rank sweep.
func BenchmarkFig5GSTConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchOpts())
		first, last := res.Points[0], res.Points[len(res.Points)/2-1]
		b.ReportMetric(first.Total, "sec-small-p4")
		b.ReportMetric(last.Total, "sec-small-p32")
		b.ReportMetric(first.Total/last.Total, "speedup-small")
		b.ReportMetric(last.CommSeconds/last.Total, "comm-frac-p32")
	}
}

// BenchmarkFig9Clustering reproduces Fig. 9: master–worker clustering
// time (excluding GST construction) for two input sizes across the
// rank sweep, plus the Section 7.2 idle and availability trends.
func BenchmarkFig9Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(benchOpts())
		n := len(res.Points) / 2
		smallFirst, smallLast := res.Points[0], res.Points[n-1]
		largeFirst, largeLast := res.Points[n], res.Points[len(res.Points)-1]
		b.ReportMetric(smallFirst.ClusterSeconds/smallLast.ClusterSeconds, "speedup-small")
		b.ReportMetric(largeFirst.ClusterSeconds/largeLast.ClusterSeconds, "speedup-large")
		b.ReportMetric(smallLast.MeanWorkerIdle*100, "idle-pct-small-pmax")
		b.ReportMetric(largeLast.MeanWorkerIdle*100, "idle-pct-large-pmax")
		b.ReportMetric(largeLast.MasterAvailability*100, "master-avail-pct")
	}
}

// BenchmarkTable1PairStats reproduces Table 1: promising pairs
// generated/aligned/accepted across the input-size sweep.
func BenchmarkTable1PairStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchOpts())
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.Generated), "pairs-generated")
		b.ReportMetric(last.SavingsFrac*100, "savings-pct")
		b.ReportMetric(last.AcceptedOfAln*100, "accepted-of-aligned-pct")
		growth := float64(last.Generated) / float64(res.Rows[0].Generated)
		b.ReportMetric(growth, "pair-growth-1x-to-5x")
	}
}

// BenchmarkTable2Preprocess reproduces Table 2: per-type fragment
// survival through trimming, vector screening and repeat masking.
func BenchmarkTable2Preprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts())
		for _, row := range res.Rows {
			b.ReportMetric(row.Stats.SurvivalRate()*100, "survival-pct-"+row.Type)
		}
	}
}

// BenchmarkTable3Workloads reproduces Table 3: clustering the
// Drosophila-like WGS and Sargasso-like environmental workloads.
func BenchmarkTable3Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchOpts())
		b.ReportMetric(res.Rows[0].SavingsFrac*100, "savings-pct-wgs")
		b.ReportMetric(res.Rows[1].SavingsFrac*100, "savings-pct-env")
		b.ReportMetric(res.Rows[0].TotalSeconds, "sec-wgs")
		b.ReportMetric(res.Rows[1].TotalSeconds, "sec-env")
	}
}

// BenchmarkMaizeSection8 reproduces the Section 8 end-to-end maize
// run: cluster statistics and contigs per cluster.
func BenchmarkMaizeSection8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Maize(benchOpts())
		b.ReportMetric(float64(res.NumClusters), "clusters")
		b.ReportMetric(float64(res.NumSingletons), "singletons")
		b.ReportMetric(res.MeanClusterSize, "mean-cluster-size")
		b.ReportMetric(res.MaxClusterFrac*100, "max-cluster-pct")
		b.ReportMetric(res.ContigsPerCluster, "contigs-per-cluster")
	}
}

// BenchmarkValidation reproduces the Section 9.1 validation: cluster
// specificity against ground truth and consensus accuracy.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Validation(benchOpts())
		b.ReportMetric(res.Cluster.Specificity()*100, "specificity-pct")
		b.ReportMetric(float64(res.Cluster.SplitViolations), "false-splits")
		b.ReportMetric(res.Contig.ErrorsPer10kb, "errors-per-10kb")
	}
}

// BenchmarkMaskingAblation reproduces the Section 9.1 masking
// ablation: clustering with vs without repeat masking.
func BenchmarkMaskingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Masking(benchOpts())
		b.ReportMetric(res.Unmasked.ModeledSeconds/res.Masked.ModeledSeconds, "slowdown-unmasked")
		b.ReportMetric(res.Unmasked.MaxClusterFrac*100, "max-cluster-pct-unmasked")
		b.ReportMetric(res.Masked.MaxClusterFrac*100, "max-cluster-pct-masked")
	}
}

// BenchmarkFilterAblation compares the maximal-match filter against
// the w-mer lookup table, and ordered against arbitrary pair
// processing.
func BenchmarkFilterAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Filter(benchOpts())
		b.ReportMetric(float64(res.LookupPairs)/float64(res.TreePairs), "lookup-pair-inflation")
		b.ReportMetric(float64(res.TreePairs)/float64(res.TreePairsDedup), "dedup-reduction")
		b.ReportMetric(res.OrderedSavings*100, "savings-pct-ordered")
		b.ReportMetric(res.ShuffledSavings*100, "savings-pct-shuffled")
	}
}

// BenchmarkCommAblation compares the customized staged Alltoallv with
// the direct one, and Ssend with eager worker sends (peak buffers).
func BenchmarkCommAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Comm(benchOpts())
		b.ReportMetric(float64(res.DirectPeakBytes)/float64(res.StagedPeakBytes+1), "alltoallv-buffer-ratio")
		b.ReportMetric(float64(res.EagerMasterPeak)/float64(res.SsendMasterPeak+1), "master-buffer-ratio")
	}
}

// BenchmarkGranularityAblation measures the Section 7.2 single-master
// remedy: scaling dispatch batches with machine size keeps the
// master's message frequency and availability flat.
func BenchmarkGranularityAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Granularity(benchOpts())
		last := len(res.Ranks) - 1
		b.ReportMetric(float64(res.FixedMsgs[last]), "master-msgs-fixed-pmax")
		b.ReportMetric(float64(res.ScaledMsgs[last]), "master-msgs-scaled-pmax")
		b.ReportMetric(res.FixedAvail[last]*100, "avail-pct-fixed-pmax")
		b.ReportMetric(res.ScaledAvail[last]*100, "avail-pct-scaled-pmax")
	}
}
