package repro

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

func TestFacadeFASTARoundTrip(t *testing.T) {
	frags := []*Fragment{
		{Name: "a", Bases: []byte("ACGTACGT")},
		{Name: "b desc", Bases: []byte("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, frags); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "a" || string(out[1].Bases) != "TTTT" {
		t.Fatalf("roundtrip wrong: %+v", out)
	}
}

func TestFacadeAttachQuals(t *testing.T) {
	frags := []*Fragment{{Name: "r", Bases: []byte("ACG")}}
	if err := AttachQuals(frags, []seq.QualRecord{{Name: "r", Quals: []byte{40, 40, 40}}}); err != nil {
		t.Fatal(err)
	}
	if frags[0].Qual == nil {
		t.Fatal("quals not attached")
	}
}

func TestFacadeRunSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 15000})
	reads := simulate.SampleWGS(rng, g, 5.0, simulate.DefaultReadConfig(), "r")
	cfg := DefaultConfig()
	cfg.Cluster.Psi = 16
	cfg.Cluster.W = 8
	res, err := Run(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 || res.TotalContigs() == 0 {
		t.Fatalf("pipeline produced nothing: %d clusters, %d contigs",
			len(res.Clusters), res.TotalContigs())
	}
	if res.Store == nil || res.Clustering == nil {
		t.Fatal("result incomplete")
	}
}

func TestFacadeDetectRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{
		Length:  40000,
		Repeats: []simulate.RepeatFamily{{Length: 500, Copies: 30, Divergence: 0.01}},
	})
	rc := simulate.DefaultReadConfig()
	rc.VectorProb = 0
	reads := simulate.SampleWGS(rng, g, 3.0, rc, "r")
	db := DetectRepeats(reads, 16, 8)
	if db.Size() == 0 {
		t.Error("no repeats detected in a 30-copy genome")
	}
}

func TestFacadeParallelConfig(t *testing.T) {
	cfg := DefaultParallelConfig(8)
	if cfg.Ranks != 8 || cfg.BatchSize == 0 {
		t.Errorf("parallel defaults wrong: %+v", cfg)
	}
}

// TestScaffoldEndToEnd builds a genome with a sequencing gap in the
// middle, tiles reads over the two flanks, spans the gap with mate
// clones, and checks that cluster → assemble → scaffold reconnects the
// two contigs in order with a sane gap estimate.
func TestScaffoldEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := simulate.NewGenome(rng, "g", simulate.GenomeConfig{Length: 12000})
	rc := simulate.DefaultReadConfig()
	rc.MeanLen = 400
	rc.LenSD = 1
	rc.VectorProb = 0

	var frags []*Fragment
	tile := func(lo, hi int, prefix string) {
		for s := lo; s+400 <= hi; s += 120 {
			frags = append(frags, simulate.SampleAt(rng, g, rc, s, prefix))
		}
	}
	tile(0, 5000, "L")
	tile(7000, 12000, "R")

	// Gap-spanning clones: forward read near the left flank's end,
	// reverse read near the right flank's start.
	var links []MateLink
	type pending struct{ f, r int }
	var pend []pending
	for k := 0; k < 4; k++ {
		fStart := 4000 + 90*k
		rStart := 7600 + 90*k
		fv := simulate.SampleAt(rng, g, rc, fStart, "MF")
		rv := simulate.SampleAt(rng, g, rc, rStart, "MR")
		fv.Origin.Reverse = false
		rv.Origin.Reverse = true
		// Force strands: mate protocol needs F forward, R reverse.
		fv.Bases = append([]byte(nil), g.Seq[fStart:fStart+400]...)
		rv.Bases = seqRC(g.Seq[rStart : rStart+400])
		pend = append(pend, pending{len(frags), len(frags) + 1})
		frags = append(frags, fv, rv)
	}

	cfg := DefaultConfig()
	cfg.Cluster.Psi = 16
	cfg.Cluster.W = 8
	cfg.PreprocessEnabled = false
	res, err := Run(frags, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var contigs []Contig
	for _, cs := range res.Contigs {
		contigs = append(contigs, cs...)
	}
	if len(contigs) < 2 {
		t.Fatalf("expected ≥2 contigs across the gap, got %d", len(contigs))
	}
	for _, p := range pend {
		links = append(links, MateLink{
			ForwardFrag: p.f,
			ReverseFrag: p.r,
			InsertLen:   7600 + 400 - 4000, // clone span ≈ 4000
		})
	}
	scfg := ScaffoldConfig{MinLinks: 2, ReadLen: 400, MaxGapSlack: 800}
	scs := BuildScaffolds(contigs, links, scfg)

	longest := 0
	for _, s := range scs {
		if len(s.Contigs) > longest {
			longest = len(s.Contigs)
		}
	}
	if longest < 2 {
		t.Fatalf("scaffolding did not join the flanks: %d scaffolds, longest %d", len(scs), longest)
	}
}

func seqRC(b []byte) []byte {
	out := make([]byte, len(b))
	comp := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for i, c := range b {
		out[len(b)-1-i] = comp[c]
	}
	return out
}
