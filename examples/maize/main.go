// Maize: the Section 8 scenario — a repeat-rich genome with sparse
// gene islands, sequenced as a mixture of methyl-filtrated, High-C0t,
// BAC-derived, and whole-genome shotgun fragments; preprocessed
// against a known-repeat database and assembled with the parallel
// master–worker clustering engine.
//
//	go run ./examples/maize
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/preprocess"
	"repro/internal/simulate"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	m := simulate.MaizeLike(rng, 150000)
	fmt.Printf("maize-like genome: %d bp, %.0f%% repeats, %d gene islands\n",
		len(m.Genome.Seq), 100*m.Genome.RepeatFraction(), len(m.Genome.Islands))
	fmt.Printf("reads: MF %d, HC %d, BAC %d, WGS %d\n",
		len(m.MF), len(m.HC), len(m.BAC), len(m.WGS))

	// Known-repeat database, the curated maize repeat screen.
	var repSeqs [][]byte
	for _, r := range m.Genome.Repeats {
		repSeqs = append(repSeqs, m.Genome.Seq[r.Span.Start:r.Span.End])
	}

	cfg := repro.DefaultConfig()
	cfg.Preprocess.Trim.Vector = simulate.DefaultReadConfig().Vector
	cfg.Preprocess.Repeats = preprocess.NewRepeatDBFromSeqs(repSeqs, 16)
	cfg.Parallel = repro.DefaultParallelConfig(9) // 1 master + 8 workers

	res, err := repro.Run(m.All(), cfg)
	if err != nil {
		panic(err)
	}

	st := res.PreprocessStats
	fmt.Printf("preprocessing: %d → %d fragments (%d repeat-invalidated, %d trimmed away)\n",
		st.FragsBefore, st.FragsAfter, st.Repetitive, st.Trimmed)

	sum := res.Clustering.Summarize()
	fmt.Printf("clustering on 8 workers: %d clusters (mean %.1f frags, largest %.1f%% of input), %d singletons\n",
		sum.NumClusters, sum.MeanSize, 100*sum.MaxFraction, sum.NumSingletons)
	fmt.Printf("  %d pairs generated, %d aligned (%.1f%% saved), %d accepted\n",
		res.Clustering.Stats.Generated, res.Clustering.Stats.Aligned,
		100*res.Clustering.Stats.SavingsFraction(), res.Clustering.Stats.Accepted)
	fmt.Printf("  modeled time: GST %.3fs + clustering %.3fs\n",
		res.Clustering.Stats.GSTSeconds, res.Clustering.Stats.ClusterSeconds)
	fmt.Printf("assembly: %d contigs, %.2f per cluster\n",
		res.TotalContigs(), res.ContigsPerCluster())
}
