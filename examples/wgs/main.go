// WGS: the Section 9.1 scenario — reassemble a uniformly shotgunned
// genome (Drosophila-style, 8.8×), detecting repeats statistically
// from a read sample, and validate the clustering against the
// simulator's ground truth (the paper's 98.7 % single-benchmark
// specificity check).
//
//	go run ./examples/wgs
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/preprocess"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/validate"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	genome, reads := simulate.DrosophilaLike(rng, 80000)
	fmt.Printf("WGS workload: %d reads at 8.8x over a %d bp genome\n",
		len(reads), len(genome.Seq))

	// Statistical repeat detection from a fixed ≈0.3× coverage sample
	// (Section 9.1): over-represented 16-mers mark repeats.
	sample := preprocess.SampleToCoverage(rng, reads, len(genome.Seq)*3/10)
	db := repro.DetectRepeats(sample, 16, 4)
	fmt.Printf("statistical repeat detection: %d repeat 16-mers\n", db.Size())

	cfg := repro.DefaultConfig()
	cfg.Preprocess.Trim.Vector = simulate.DefaultReadConfig().Vector
	cfg.Preprocess.Repeats = db

	res, err := repro.Run(reads, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clustering: %d clusters, %d singletons, %.1f%% alignment savings\n",
		len(res.Clusters), len(res.Singletons),
		100*res.Clustering.Stats.SavingsFraction())

	// Ground-truth validation.
	groups := res.Clustering.UF.Groups()
	labels := validate.ClusterOf(res.Store.N(), groups)
	cm := validate.Clusters(res.Store.(*seq.Store), res.Clusters, labels, 80)
	fmt.Printf("validation: %.1f%% of clusters map to a single region, %d false splits / %d checked\n",
		100*cm.Specificity(), cm.SplitViolations, cm.OverlapPairsChecked)

	var contigs []repro.Contig
	for _, cs := range res.Contigs {
		contigs = append(contigs, cs...)
	}
	am := validate.Contigs(res.Store.(*seq.Store), contigs, map[string][]byte{genome.Name: genome.Seq})
	fmt.Printf("assembly: %d contigs; mean identity %.2f%%, %.1f errors per 10 kb, %d chimeric\n",
		len(contigs), 100*am.MeanIdentity, am.ErrorsPer10kb, am.Chimeric)
}
