// Quickstart: synthesize a small genome, shotgun it, and run the full
// cluster-then-assemble pipeline serially.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/simulate"
)

func main() {
	// A 30 kb genome sampled at 6× with ~700 bp reads carrying
	// realistic sequencing error.
	rng := rand.New(rand.NewSource(42))
	genome := simulate.NewGenome(rng, "toy", simulate.GenomeConfig{Length: 30000})
	reads := simulate.SampleWGS(rng, genome, 6.0, simulate.DefaultReadConfig(), "read")
	fmt.Printf("sampled %d reads from a %d bp genome\n", len(reads), len(genome.Seq))

	cfg := repro.DefaultConfig()
	res, err := repro.Run(reads, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("preprocessing kept %d/%d fragments\n",
		res.PreprocessStats.FragsAfter, res.PreprocessStats.FragsBefore)
	fmt.Printf("clustering: %d clusters, %d singletons, %.1f%% of alignments saved\n",
		len(res.Clusters), len(res.Singletons),
		100*res.Clustering.Stats.SavingsFraction())

	longest := 0
	for _, cs := range res.Contigs {
		for _, c := range cs {
			if len(c.Bases) > longest {
				longest = len(c.Bases)
			}
		}
	}
	fmt.Printf("assembly: %d contigs (%.2f per cluster), longest %d bp\n",
		res.TotalContigs(), res.ContigsPerCluster(), longest)
}
