// Metagenome: the Section 9.2 scenario — cluster an environmental
// sample drawn from dozens of bacterial genomes with skewed
// abundances, including near-identical strain pairs. Clustering
// decomposes the community into per-organism (or per-strain-group)
// problems that a downstream assembler can handle independently.
//
//	go run ./examples/metagenome
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	genomes, reads := simulate.SargassoLike(rng, 24, 4000)
	fmt.Printf("environmental sample: %d reads from %d species (Zipf abundances)\n",
		len(reads), len(genomes))

	cfg := repro.DefaultConfig()
	cfg.Preprocess.Trim.Vector = simulate.DefaultReadConfig().Vector
	cfg.SkipAssembly = true // clustering is the contribution here
	cfg.Parallel = repro.DefaultParallelConfig(9)

	res, err := repro.Run(reads, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clustering: %d clusters, %d singletons, %.1f%% alignment savings\n",
		len(res.Clusters), len(res.Singletons),
		100*res.Clustering.Stats.SavingsFraction())

	// How well do clusters isolate species? Count the species mixture
	// of each multi-fragment cluster.
	pure, strainMixed, mixed := 0, 0, 0
	sizes := make([]int, 0, len(res.Clusters))
	for _, cl := range res.Clusters {
		sizes = append(sizes, len(cl))
		species := map[string]bool{}
		for _, fid := range cl {
			if o := res.Store.(*seq.Store).Fragment(fid).Origin; o != nil {
				species[o.Source] = true
			}
		}
		switch {
		case len(species) == 1:
			pure++
		case len(species) == 2:
			// Likely a planted strain pair (every 8th species is a
			// 98 %-identical strain of its predecessor).
			strainMixed++
		default:
			mixed++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := sizes
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("cluster purity: %d single-species, %d two-species (strain pairs), %d mixed\n",
		pure, strainMixed, mixed)
	fmt.Printf("largest clusters: %v\n", top)
}
