// Package repro is a from-scratch Go implementation of the massively
// parallel cluster-then-assemble genome assembly framework of
// Kalyanaraman, Emrich, Schnable and Aluru ("Assembling genomes on
// large-scale parallel computers", IPPS 2006 / JPDC 67 (2007)
// 1240–1255).
//
// The framework partitions shotgun sequencing fragments into clusters
// using a generalized suffix tree that streams promising pairs —
// pairs sharing a maximal exact match of length ≥ ψ — in decreasing
// match-length order and linear space, aligns a pair only when its
// fragments are in different clusters, and then assembles each
// cluster independently with a conventional overlap–layout–consensus
// assembler. Clustering runs either serially or on an in-process
// message-passing machine with one master and p−1 worker ranks.
//
// This package is the high-level entry point; the building blocks
// live under internal/ (par, seq, simulate, preprocess, suffixtree,
// pgst, pairgen, align, cluster, assembly, validate, experiments).
package repro

import (
	"io"

	"repro/internal/assembly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/preprocess"
	"repro/internal/scaffold"
	"repro/internal/seq"
)

// Re-exported pipeline types.
type (
	// Config configures the full cluster-then-assemble pipeline.
	Config = core.Config
	// Result is a completed pipeline run.
	Result = core.Result
	// Fragment is one sequencing read.
	Fragment = seq.Fragment
	// Store indexes fragments and their reverse complements.
	Store = seq.Store
	// ClusterConfig holds the clustering parameters (ψ, w, band,
	// overlap criteria).
	ClusterConfig = cluster.Config
	// ParallelConfig sizes the master–worker machine.
	ParallelConfig = cluster.ParallelConfig
	// AssemblyConfig holds the per-cluster assembler parameters.
	AssemblyConfig = assembly.Config
	// Contig is one assembled contiguous sequence.
	Contig = assembly.Contig
	// PreprocessConfig drives trimming, vector screening and masking.
	PreprocessConfig = preprocess.Config
	// RepeatDB is a repeat k-mer database for masking.
	RepeatDB = preprocess.RepeatDB
	// StoreConfig selects the sequence-store backend (in-memory, or
	// the out-of-core disk store).
	StoreConfig = core.StoreConfig
)

// Store backend names for StoreConfig.Backend.
const (
	StoreMem  = core.StoreMem
	StoreDisk = core.StoreDisk
)

// DefaultConfig returns a serial pipeline with paper-like parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultParallelConfig returns a p-rank master–worker configuration.
func DefaultParallelConfig(p int) ParallelConfig { return cluster.DefaultParallelConfig(p) }

// Run executes preprocess → cluster → assemble on the fragments. It
// returns an error when the parallel machine is misconfigured or a
// fault-injection run loses too many workers to finish.
func Run(frags []*Fragment, cfg Config) (*Result, error) { return core.Run(frags, cfg) }

// NewStore indexes fragments (and their reverse complements) for
// direct use of the clustering and assembly engines.
func NewStore(frags []*Fragment) *Store { return seq.NewStore(frags) }

// ReadFASTA parses FASTA records into fragments.
func ReadFASTA(r io.Reader) ([]*Fragment, error) {
	recs, err := seq.ReadFASTA(r)
	if err != nil {
		return nil, err
	}
	frags := make([]*Fragment, len(recs))
	for i, rec := range recs {
		frags[i] = &Fragment{Name: rec.Name, Bases: rec.Bases}
	}
	return frags, nil
}

// WriteFASTA writes fragments as FASTA.
func WriteFASTA(w io.Writer, frags []*Fragment) error {
	recs := make([]seq.Record, len(frags))
	for i, f := range frags {
		recs[i] = seq.Record{Name: f.Name, Bases: f.Bases}
	}
	return seq.WriteFASTA(w, recs, 0)
}

// DetectRepeats builds a repeat database by statistical
// over-representation of k-mers in a read sample (Section 9.1).
func DetectRepeats(sample []*Fragment, k, minCount int) *RepeatDB {
	return preprocess.DetectRepeats(sample, k, minCount)
}

// AttachQuals attaches .qual records (seq.ReadQual) to fragments by
// name, enabling quality trimming during preprocessing.
func AttachQuals(frags []*Fragment, quals []seq.QualRecord) error {
	return seq.AttachQuals(frags, quals)
}

// Scaffolding re-exports.
type (
	// MateLink is a clone whose paired reads landed in two contigs.
	MateLink = scaffold.MateLink
	// Scaffold is an ordered, oriented contig chain.
	Scaffold = scaffold.Scaffold
	// ScaffoldConfig parameterizes scaffolding.
	ScaffoldConfig = scaffold.Config
)

// BuildScaffolds orders and orients contigs along the chromosome using
// clone-mate links (the paper's downstream scaffolding stage).
func BuildScaffolds(contigs []Contig, links []MateLink, cfg ScaffoldConfig) []Scaffold {
	return scaffold.Build(contigs, links, cfg)
}
